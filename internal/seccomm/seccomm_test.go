package seccomm

import (
	"bytes"
	"crypto/aes"
	"errors"
	"net"
	"testing"
	"testing/quick"
	"time"
)

func chachaKey() []byte {
	k := make([]byte, 32)
	for i := range k {
		k[i] = byte(i)
	}
	return k
}

func aesKey() []byte {
	k := make([]byte, 16)
	for i := range k {
		k[i] = byte(0xA0 + i)
	}
	return k
}

func TestNewSealerKeyValidation(t *testing.T) {
	if _, err := NewSealer(ChaCha20Stream, make([]byte, 16)); err == nil {
		t.Error("short chacha key accepted")
	}
	if _, err := NewSealer(AES128Block, make([]byte, 32)); err == nil {
		t.Error("long aes key accepted")
	}
	if _, err := NewSealer(CipherKind(99), chachaKey()); err == nil {
		t.Error("unknown kind accepted")
	}
}

func TestSealOpenRoundTrip(t *testing.T) {
	for _, kind := range []CipherKind{ChaCha20Stream, AES128Block, ChaCha20Poly1305} {
		key := chachaKey()
		if kind == AES128Block {
			key = aesKey()
		}
		sealer, err := NewSealer(kind, key)
		if err != nil {
			t.Fatal(err)
		}
		opener, err := NewSealer(kind, key)
		if err != nil {
			t.Fatal(err)
		}
		prop := func(msg []byte) bool {
			sealed, err := sealer.Seal(msg)
			if err != nil {
				return false
			}
			got, err := opener.Open(sealed)
			if err != nil {
				return false
			}
			return bytes.Equal(got, msg)
		}
		if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
			t.Errorf("%v: %v", kind, err)
		}
	}
}

func TestWireSizePrediction(t *testing.T) {
	for _, kind := range []CipherKind{ChaCha20Stream, AES128Block, ChaCha20Poly1305} {
		key := chachaKey()
		if kind == AES128Block {
			key = aesKey()
		}
		sealer, _ := NewSealer(kind, key)
		for _, n := range []int{0, 1, 15, 16, 17, 255, 1000} {
			sealed, err := sealer.Seal(make([]byte, n))
			if err != nil {
				t.Fatal(err)
			}
			if len(sealed) != sealer.WireSize(n) {
				t.Errorf("%v n=%d: wire %d, predicted %d", kind, n, len(sealed), sealer.WireSize(n))
			}
		}
	}
}

func TestStreamCipherPreservesLengthExactly(t *testing.T) {
	// The side-channel's root cause.
	s, _ := NewSealer(ChaCha20Stream, chachaKey())
	a, _ := s.Seal(make([]byte, 100))
	b, _ := s.Seal(make([]byte, 101))
	if len(b)-len(a) != 1 {
		t.Errorf("stream cipher does not preserve byte granularity: %d vs %d", len(a), len(b))
	}
}

func TestBlockCipherRoundsToBlocks(t *testing.T) {
	s, _ := NewSealer(AES128Block, aesKey())
	a, _ := s.Seal(make([]byte, 1))
	b, _ := s.Seal(make([]byte, 15))
	if len(a) != len(b) {
		t.Errorf("1B and 15B payloads should share a block count: %d vs %d", len(a), len(b))
	}
	c, _ := s.Seal(make([]byte, 16))
	if len(c) != len(a)+aes.BlockSize {
		t.Errorf("16B payload should need one more block")
	}
}

func TestNoncesAdvance(t *testing.T) {
	// Sealing the same plaintext twice must give different ciphertexts.
	for _, kind := range []CipherKind{ChaCha20Stream, AES128Block, ChaCha20Poly1305} {
		key := chachaKey()
		if kind == AES128Block {
			key = aesKey()
		}
		s, _ := NewSealer(kind, key)
		a, _ := s.Seal([]byte("hello sensor"))
		b, _ := s.Seal([]byte("hello sensor"))
		if bytes.Equal(a, b) {
			t.Errorf("%v: nonce reuse across messages", kind)
		}
	}
}

// Regression: two sealers built with the same key (the fleet shape when a
// sensor is re-created or redials after a fault) must never repeat a
// (key, nonce) pair. Before the instance-prefix fix both counters restarted
// at zero and this test failed with identical nonces on the first message.
func TestSealersWithSameKeyNeverRepeatNonces(t *testing.T) {
	const perSealer = 64
	for _, kind := range []CipherKind{ChaCha20Stream, AES128Block, ChaCha20Poly1305} {
		key := chachaKey()
		nonceLen := 12 // chacha-family nonce
		if kind == AES128Block {
			key = aesKey()
			nonceLen = aes.BlockSize // CBC IV
		}
		seen := make(map[string]int)
		for inst := 0; inst < 3; inst++ {
			s, err := NewSealer(kind, key)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < perSealer; i++ {
				sealed, err := s.Seal([]byte("same plaintext every time"))
				if err != nil {
					t.Fatal(err)
				}
				nonce := string(sealed[:nonceLen])
				if prev, dup := seen[nonce]; dup {
					t.Fatalf("%v: sealer %d repeated nonce %x first used by sealer %d",
						kind, inst, nonce, prev)
				}
				seen[nonce] = inst
			}
		}
	}
}

// The keystream-reuse consequence, stated directly: with a stream cipher,
// reused nonces XOR two ciphertexts into the XOR of the plaintexts. With
// distinct nonces the ciphertext bodies of the same plaintext under two
// same-key sealers must differ.
func TestSameKeySealersProduceDistinctCiphertexts(t *testing.T) {
	key := chachaKey()
	s1, _ := NewSealer(ChaCha20Stream, key)
	s2, _ := NewSealer(ChaCha20Stream, key)
	msg := []byte("secret sensor batch payload")
	a, _ := s1.Seal(msg)
	b, _ := s2.Seal(msg)
	if bytes.Equal(a[12:], b[12:]) {
		t.Fatal("same-key sealers reused a keystream for their first message")
	}
	// Cross-opening still works: the nonce travels in the message.
	opener, _ := NewSealer(ChaCha20Stream, key)
	for _, sealed := range [][]byte{a, b} {
		got, err := opener.Open(sealed)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, msg) {
			t.Fatal("instance-prefixed message did not open")
		}
	}
}

func TestOpenRejectsMalformed(t *testing.T) {
	c, _ := NewSealer(ChaCha20Stream, chachaKey())
	if _, err := c.Open([]byte{1, 2, 3}); err == nil {
		t.Error("short chacha message accepted")
	}
	a, _ := NewSealer(AES128Block, aesKey())
	if _, err := a.Open(make([]byte, 17)); err == nil {
		t.Error("non-block-aligned aes message accepted")
	}
	if _, err := a.Open(make([]byte, 16)); err == nil {
		t.Error("iv-only aes message accepted")
	}
	// Corrupt padding: decrypt garbage blocks.
	if _, err := a.Open(make([]byte, 48)); err == nil {
		t.Log("note: random padding happened to validate (1/256 chance); acceptable")
	}
}

func TestAEADSealerAuthenticates(t *testing.T) {
	s, err := NewSealer(ChaCha20Poly1305, chachaKey())
	if err != nil {
		t.Fatal(err)
	}
	sealed, err := s.Seal([]byte("sensor batch"))
	if err != nil {
		t.Fatal(err)
	}
	sealed[len(sealed)-1] ^= 1
	if _, err := s.Open(sealed); err == nil {
		t.Error("tampered AEAD message accepted")
	}
	if _, err := s.Open(sealed[:10]); err == nil {
		t.Error("truncated AEAD message accepted")
	}
	// The AEAD adds a *constant* overhead, so fixed-size AGE payloads
	// still produce fixed-size wire messages.
	a, _ := s.Seal(make([]byte, 100))
	b, _ := s.Seal(make([]byte, 100))
	if len(a) != len(b) {
		t.Errorf("AEAD wire sizes differ for equal payloads: %d vs %d", len(a), len(b))
	}
}

func TestRoundTargetToCipher(t *testing.T) {
	if got := RoundTargetToCipher(100, ChaCha20Stream); got != 100 {
		t.Errorf("stream target changed: %d", got)
	}
	// 100 -> ceil(101/16)=7 blocks -> 7*16-1 = 111 payload bytes.
	if got := RoundTargetToCipher(100, AES128Block); got != 111 {
		t.Errorf("block target = %d, want 111", got)
	}
	// The rounded target fills blocks exactly.
	s, _ := NewSealer(AES128Block, aesKey())
	target := RoundTargetToCipher(100, AES128Block)
	if w := s.WireSize(target); w != 16+112 {
		t.Errorf("wire size %d for rounded target", w)
	}
	if got := RoundTargetToCipher(0, AES128Block); got != 15 {
		t.Errorf("degenerate target = %d, want 15", got)
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	msgs := [][]byte{{}, {1}, bytes.Repeat([]byte{0xAB}, 1000)}
	for _, m := range msgs {
		if err := WriteFrame(&buf, m); err != nil {
			t.Fatal(err)
		}
	}
	for _, want := range msgs {
		got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("frame = %x, want %x", got, want)
		}
	}
}

func TestFrameTooLarge(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, make([]byte, MaxFrameSize+1)); err == nil {
		t.Error("oversized frame accepted")
	}
}

func TestReadFrameTruncated(t *testing.T) {
	if _, err := ReadFrame(bytes.NewReader([]byte{0, 5, 1, 2})); err == nil {
		t.Error("truncated frame accepted")
	}
	if _, err := ReadFrame(bytes.NewReader(nil)); err == nil {
		t.Error("empty stream accepted")
	}
}

func BenchmarkSealChaCha(b *testing.B) {
	s, _ := NewSealer(ChaCha20Stream, chachaKey())
	msg := make([]byte, 640)
	b.SetBytes(640)
	for i := 0; i < b.N; i++ {
		if _, err := s.Seal(msg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSealAES(b *testing.B) {
	s, _ := NewSealer(AES128Block, aesKey())
	msg := make([]byte, 640)
	b.SetBytes(640)
	for i := 0; i < b.N; i++ {
		if _, err := s.Seal(msg); err != nil {
			b.Fatal(err)
		}
	}
}

func TestAESOpenUniformError(t *testing.T) {
	s, err := NewSealer(AES128Block, aesKey())
	if err != nil {
		t.Fatal(err)
	}
	// Structural failures (bad length) must return the same error as
	// padding failures: a distinguishable error is a padding oracle.
	structural := map[string][]byte{
		"empty":       nil,
		"iv only":     make([]byte, 16),
		"not aligned": make([]byte, 17),
	}
	for name, msg := range structural {
		if _, err := s.Open(msg); !errors.Is(err, errAESMalformed) {
			t.Errorf("%s: err = %v, want the uniform malformed error", name, err)
		}
	}
	sealed, err := s.Seal([]byte("ten bytes!"))
	if err != nil {
		t.Fatal(err)
	}
	// Corrupting the final ciphertext block garbles the decrypted padding.
	// Every corruption that fails must fail with the same uniform error.
	failures := 0
	for delta := 1; delta < 256; delta++ {
		tampered := append([]byte(nil), sealed...)
		tampered[len(tampered)-1] ^= byte(delta)
		if _, err := s.Open(tampered); err != nil {
			failures++
			if !errors.Is(err, errAESMalformed) {
				t.Fatalf("delta %d: err = %v, want the uniform malformed error", delta, err)
			}
		}
	}
	if failures == 0 {
		t.Error("no ciphertext corruption produced an error")
	}
}

func TestFrameDeadlineExpiry(t *testing.T) {
	client, server := net.Pipe()
	defer client.Close()
	defer server.Close()
	var nerr net.Error
	// net.Pipe is unbuffered, so with no reader the write must time out.
	err := WriteFrameDeadline(client, []byte("payload"), 30*time.Millisecond)
	if !errors.As(err, &nerr) || !nerr.Timeout() {
		t.Fatalf("write with absent peer: err = %v, want timeout", err)
	}
	if _, err := ReadFrameDeadline(server, 30*time.Millisecond); !errors.As(err, &nerr) || !nerr.Timeout() {
		t.Fatalf("read with absent peer: err = %v, want timeout", err)
	}
}

func TestFrameDeadlineClearedAfterUse(t *testing.T) {
	client, server := net.Pipe()
	defer client.Close()
	defer server.Close()
	msg := []byte("deadline frame")
	errc := make(chan error, 1)
	go func() { errc <- WriteFrameDeadline(client, msg, time.Second) }()
	got, err := ReadFrameDeadline(server, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("frame = %q, want %q", got, msg)
	}
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	// The helpers clear the deadline on the way out: after sleeping past
	// the previous timeout the connection must still carry plain frames.
	time.Sleep(80 * time.Millisecond)
	go func() { errc <- WriteFrame(client, msg) }()
	got, err = ReadFrame(server)
	if err != nil {
		t.Fatalf("read after expired deadline window: %v (deadline not cleared?)", err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("frame = %q, want %q", got, msg)
	}
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
}

func TestReadFullDeadlineExpiry(t *testing.T) {
	client, server := net.Pipe()
	defer client.Close()
	defer server.Close()
	buf := make([]byte, 4)
	var nerr net.Error
	if err := ReadFullDeadline(server, buf, 30*time.Millisecond); !errors.As(err, &nerr) || !nerr.Timeout() {
		t.Fatalf("err = %v, want timeout", err)
	}
	_ = client
}
