// Package seccomm implements the encrypted sensor-to-server link: message
// sealing with either a ChaCha20 stream cipher (the simulator's cipher,
// §5.1) or an AES-128 block cipher in CBC mode (the MCU's cipher, which has
// a hardware AES accelerator, §5.7), plus length-prefixed framing for the
// TCP transport.
//
// The cipher choice matters to the side-channel: a stream cipher preserves
// the plaintext length exactly, while a block cipher rounds it up to the
// block size — coarsening, but not closing, the leak. AGE supports both by
// sizing its fixed target to the wire (§4.5): as given for a stream cipher,
// rounded to a block for a block cipher.
package seccomm

import (
	"bufio"
	"crypto/aes"
	"crypto/cipher"
	"crypto/subtle"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync/atomic"
	"time"

	"repro/internal/chacha"
)

// CipherKind selects the sealing algorithm.
type CipherKind int

// The evaluated ciphers. The paper's simulator uses the bare ChaCha20
// stream and the MCU uses AES-128-CBC; the AEAD variant adds RFC 7539's
// Poly1305 authentication, which deployments should prefer — its constant
// 16-byte tag leaves the message-size side-channel exactly as exposed.
const (
	// ChaCha20Stream is the IETF RFC 7539 stream cipher (simulator).
	ChaCha20Stream CipherKind = iota
	// AES128Block is AES-128-CBC with PKCS#7 padding (MCU hardware).
	AES128Block
	// ChaCha20Poly1305 is the RFC 7539 AEAD.
	ChaCha20Poly1305
)

// String implements fmt.Stringer.
func (k CipherKind) String() string {
	switch k {
	case ChaCha20Stream:
		return "chacha20"
	case AES128Block:
		return "aes128-cbc"
	case ChaCha20Poly1305:
		return "chacha20-poly1305"
	default:
		return fmt.Sprintf("cipher(%d)", int(k))
	}
}

// Sealer encrypts payloads into wire messages and back. Implementations are
// stateful (nonce counters) and not safe for concurrent use.
type Sealer interface {
	// Seal encrypts a payload into a wire message.
	Seal(plaintext []byte) ([]byte, error)
	// Open decrypts a wire message back into the payload.
	Open(message []byte) ([]byte, error)
	// WireSize predicts the sealed size for a payload length — the
	// quantity the attacker observes.
	WireSize(plaintextLen int) int
	// Kind reports the cipher in use.
	Kind() CipherKind
}

// sealerInstance hands out a process-unique 4-byte prefix per sealer. The
// prefix occupies the nonce/IV bytes the per-message counter does not use,
// so two sealers built from the same key — a real shape in the fleet, where
// a sensor may be re-created or redial after a fault — can never emit the
// same (key, nonce) pair even though both counters restart at zero. That
// makes counter-nonce keystream reuse structurally impossible instead of a
// caller discipline. The counter wraps only after 2^32 sealers in one
// process, far beyond any fleet run.
var sealerInstance atomic.Uint32

// ErrBadKey marks a key whose length does not fit the requested cipher.
// NewSealer wraps it into its descriptive per-cipher message so callers can
// branch with errors.Is; the root package re-exports it.
var ErrBadKey = errors.New("key length invalid for cipher")

// NewSealer constructs a sealer of the given kind. key must be 32 bytes for
// ChaCha20 and 16 bytes for AES-128. Peers must construct sealers with the
// same key and kind; nonces/IVs travel in the message, so the receiver does
// not need to know the sender's instance prefix. Each sealer seals with
// nonces no other sealer in this process will ever produce.
func NewSealer(kind CipherKind, key []byte) (Sealer, error) {
	id := sealerInstance.Add(1)
	switch kind {
	case ChaCha20Stream:
		if len(key) != chacha.KeySize {
			return nil, fmt.Errorf("seccomm: chacha20 key must be %d bytes, got %d: %w", chacha.KeySize, len(key), ErrBadKey)
		}
		return &chachaSealer{key: append([]byte(nil), key...), instance: id}, nil
	case AES128Block:
		if len(key) != 16 {
			return nil, fmt.Errorf("seccomm: aes-128 key must be 16 bytes, got %d: %w", len(key), ErrBadKey)
		}
		block, err := aes.NewCipher(key)
		if err != nil {
			return nil, err
		}
		return &aesSealer{block: block, instance: id}, nil
	case ChaCha20Poly1305:
		if len(key) != chacha.KeySize {
			return nil, fmt.Errorf("seccomm: chacha20-poly1305 key must be %d bytes, got %d: %w", chacha.KeySize, len(key), ErrBadKey)
		}
		aead, err := chacha.NewAEAD(key)
		if err != nil {
			return nil, err
		}
		return &aeadSealer{aead: aead, instance: id}, nil
	default:
		return nil, fmt.Errorf("seccomm: unknown cipher kind %d", kind)
	}
}

// chachaSealer seals with ChaCha20 using a 12-byte nonce carried in the
// message: 4 bytes of process-unique instance prefix, then the 8-byte
// message counter — the standard low-power pattern (a counter instead of a
// random nonce avoids an RNG on the sensor), with the prefix closing the
// counter-restart reuse hole.
type chachaSealer struct {
	key      []byte
	instance uint32
	counter  uint64
}

func (s *chachaSealer) Kind() CipherKind { return ChaCha20Stream }

func (s *chachaSealer) WireSize(plaintextLen int) int {
	return chacha.NonceSize + plaintextLen
}

func (s *chachaSealer) Seal(plaintext []byte) ([]byte, error) {
	nonce := make([]byte, chacha.NonceSize)
	binary.BigEndian.PutUint32(nonce[:4], s.instance)
	binary.BigEndian.PutUint64(nonce[4:], s.counter)
	s.counter++
	ct, err := chacha.Encrypt(s.key, nonce, plaintext)
	if err != nil {
		return nil, err
	}
	return append(nonce, ct...), nil
}

func (s *chachaSealer) Open(message []byte) ([]byte, error) {
	if len(message) < chacha.NonceSize {
		return nil, errors.New("seccomm: message shorter than nonce")
	}
	return chacha.Encrypt(s.key, message[:chacha.NonceSize], message[chacha.NonceSize:])
}

// aesSealer seals with AES-128-CBC and PKCS#7 padding; the IV carried in
// the message is [4B instance prefix][4B zero][8B message counter].
type aesSealer struct {
	block    cipher.Block
	instance uint32
	counter  uint64
}

func (s *aesSealer) Kind() CipherKind { return AES128Block }

func (s *aesSealer) WireSize(plaintextLen int) int {
	padded := (plaintextLen/aes.BlockSize + 1) * aes.BlockSize // PKCS#7 always pads
	return aes.BlockSize + padded
}

func (s *aesSealer) Seal(plaintext []byte) ([]byte, error) {
	iv := make([]byte, aes.BlockSize)
	binary.BigEndian.PutUint32(iv[:4], s.instance)
	binary.BigEndian.PutUint64(iv[8:], s.counter)
	s.counter++
	pad := aes.BlockSize - len(plaintext)%aes.BlockSize
	padded := make([]byte, len(plaintext)+pad)
	copy(padded, plaintext)
	for i := len(plaintext); i < len(padded); i++ {
		padded[i] = byte(pad)
	}
	out := make([]byte, aes.BlockSize+len(padded))
	copy(out, iv)
	cipher.NewCBCEncrypter(s.block, iv).CryptBlocks(out[aes.BlockSize:], padded)
	return out, nil
}

// errAESMalformed is the single error for every malformed AES-CBC message.
// Length and padding failures are deliberately indistinguishable: distinct
// errors (or early returns keyed on secret pad bytes) are the classic
// padding-oracle shape, and a low-power link gives the attacker plenty of
// queries.
var errAESMalformed = errors.New("seccomm: malformed aes message")

func (s *aesSealer) Open(message []byte) ([]byte, error) {
	if len(message) < 2*aes.BlockSize || (len(message)-aes.BlockSize)%aes.BlockSize != 0 {
		return nil, errAESMalformed
	}
	iv := message[:aes.BlockSize]
	ct := message[aes.BlockSize:]
	pt := make([]byte, len(ct))
	cipher.NewCBCDecrypter(s.block, iv).CryptBlocks(pt, ct)
	// Constant-time PKCS#7 check: validate the pad length range and every
	// in-pad byte without branching on plaintext, so timing does not leak
	// which byte was wrong. len(pt) >= BlockSize >= pad holds by the length
	// check above.
	padByte := pt[len(pt)-1]
	pad := int(padByte)
	valid := subtle.ConstantTimeLessOrEq(1, pad) & subtle.ConstantTimeLessOrEq(pad, aes.BlockSize)
	bad := 0
	for i := 1; i <= aes.BlockSize; i++ {
		inPad := subtle.ConstantTimeLessOrEq(i, pad)
		eq := subtle.ConstantTimeByteEq(pt[len(pt)-i], padByte)
		bad |= inPad & (eq ^ 1)
	}
	if valid&(bad^1) != 1 {
		return nil, errAESMalformed
	}
	return pt[:len(pt)-pad], nil
}

// aeadSealer seals with ChaCha20-Poly1305; the prefixed counter nonce and
// the tag travel in the message.
type aeadSealer struct {
	aead     *chacha.AEAD
	instance uint32
	counter  uint64
}

func (s *aeadSealer) Kind() CipherKind { return ChaCha20Poly1305 }

func (s *aeadSealer) WireSize(plaintextLen int) int {
	return chacha.NonceSize + plaintextLen + chacha.TagSize
}

func (s *aeadSealer) Seal(plaintext []byte) ([]byte, error) {
	nonce := make([]byte, chacha.NonceSize)
	binary.BigEndian.PutUint32(nonce[:4], s.instance)
	binary.BigEndian.PutUint64(nonce[4:], s.counter)
	s.counter++
	sealed, err := s.aead.Seal(nonce, plaintext, nil)
	if err != nil {
		return nil, err
	}
	return append(nonce, sealed...), nil
}

func (s *aeadSealer) Open(message []byte) ([]byte, error) {
	if len(message) < chacha.NonceSize+chacha.TagSize {
		return nil, errors.New("seccomm: aead message too short")
	}
	return s.aead.Open(message[:chacha.NonceSize], message[chacha.NonceSize:], nil)
}

// RoundTargetToCipher adjusts AGE's target payload size so the *wire*
// message has a clean fixed size under the given cipher (§4.5): unchanged
// for a stream cipher, rounded down to fill whole AES blocks for a block
// cipher (PKCS#7 always adds 1..16 bytes, so a target of 16k-1 payload
// bytes yields exactly k blocks).
func RoundTargetToCipher(target int, kind CipherKind) int {
	if kind != AES128Block {
		return target
	}
	blocks := (target + 1 + aes.BlockSize - 1) / aes.BlockSize
	r := blocks*aes.BlockSize - 1
	if r < 1 {
		r = aes.BlockSize - 1
	}
	return r
}

// MaxFrameSize bounds a frame's payload, set by the 2-byte length prefix.
const MaxFrameSize = 1<<16 - 1

// WriteFrame writes a length-prefixed message: 2-byte big-endian length
// followed by the bytes. The prefix models the link layer; the attacker
// reads it (and the observable packet length) to learn the message size.
// Header and body go out in a single Write so a timed-out attempt that
// transmitted nothing can be retried without corrupting the stream.
func WriteFrame(w io.Writer, msg []byte) error {
	buf, err := AppendFrame(nil, msg)
	if err != nil {
		return err
	}
	_, err = w.Write(buf)
	return err
}

// AppendFrame appends msg's wire encoding (2-byte big-endian length prefix
// plus the bytes) to dst and returns the extended slice. Callers gathering
// several frames into one Write — the ingest client's batched frame path —
// build the buffer with repeated AppendFrame calls; a receiver sees the same
// byte stream as per-frame WriteFrame calls produce.
func AppendFrame(dst, msg []byte) ([]byte, error) {
	if len(msg) > MaxFrameSize {
		return dst, fmt.Errorf("seccomm: frame %dB exceeds max %d", len(msg), MaxFrameSize)
	}
	var hdr [2]byte
	binary.BigEndian.PutUint16(hdr[:], uint16(len(msg)))
	return append(append(dst, hdr[:]...), msg...), nil
}

// ReadFrame reads one length-prefixed message.
func ReadFrame(r io.Reader) ([]byte, error) {
	var hdr [2]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	msg := make([]byte, binary.BigEndian.Uint16(hdr[:]))
	if _, err := io.ReadFull(r, msg); err != nil {
		return nil, err
	}
	return msg, nil
}

// Deadline-aware framing: the hardened transport path used by the fleet and
// socket simulators. A frame-level timeout bounds how long a peer can stall
// the pipeline — the lossy, intermittent links of the paper's deployments
// (FarmBeats fields, ZebraNet herds, §2.1/§3.3) make "the other side went
// quiet" a normal event the server must survive, not a hang.

// ReadFrameDeadline reads one frame from conn, failing with a net timeout
// error if the whole frame has not arrived within timeout. A timeout <= 0
// reads without a deadline. The deadline is cleared before returning so the
// connection can keep being used by deadline-free code.
func ReadFrameDeadline(conn net.Conn, timeout time.Duration) ([]byte, error) {
	if timeout <= 0 {
		return ReadFrame(conn)
	}
	if err := conn.SetReadDeadline(time.Now().Add(timeout)); err != nil {
		return nil, err
	}
	msg, err := ReadFrame(conn)
	conn.SetReadDeadline(time.Time{})
	return msg, err
}

// WriteFrameDeadline writes one frame to conn, failing with a net timeout
// error if the write has not completed within timeout. A timeout <= 0 writes
// without a deadline.
func WriteFrameDeadline(conn net.Conn, msg []byte, timeout time.Duration) error {
	if timeout <= 0 {
		return WriteFrame(conn, msg)
	}
	if err := conn.SetWriteDeadline(time.Now().Add(timeout)); err != nil {
		return err
	}
	err := WriteFrame(conn, msg)
	conn.SetWriteDeadline(time.Time{})
	return err
}

// FrameReader reads length-prefixed frames from a connection through an
// internal buffer, coalescing many small frames into one socket read. The
// ingest server's frame loop uses it: with clients gathering frames into
// batched writes, per-frame socket reads would throw the syscall savings
// away on the receive side. Each returned frame is freshly allocated, so
// callers may retain it — the same contract as ReadFrame.
type FrameReader struct {
	conn net.Conn
	br   *bufio.Reader
}

// NewFrameReader wraps conn with a read buffer of the given size (<= 0
// selects a default sized for a typical gathered write of small frames).
// After the first ReadFrame call, conn must not be read directly — buffered
// bytes would be lost.
func NewFrameReader(conn net.Conn, size int) *FrameReader {
	if size <= 0 {
		size = 4096
	}
	return &FrameReader{conn: conn, br: bufio.NewReaderSize(conn, size)}
}

// ReadFrame reads one frame, failing with a net timeout error if the whole
// frame has not arrived within timeout (<= 0 reads without a deadline). The
// deadline governs the underlying socket reads; frames already buffered are
// returned without touching the socket.
func (fr *FrameReader) ReadFrame(timeout time.Duration) ([]byte, error) {
	if timeout > 0 {
		if err := fr.conn.SetReadDeadline(time.Now().Add(timeout)); err != nil {
			return nil, err
		}
		defer fr.conn.SetReadDeadline(time.Time{})
	}
	var hdr [2]byte
	if _, err := io.ReadFull(fr.br, hdr[:]); err != nil {
		return nil, err
	}
	msg := make([]byte, binary.BigEndian.Uint16(hdr[:]))
	if _, err := io.ReadFull(fr.br, msg); err != nil {
		return nil, err
	}
	return msg, nil
}

// IsTimeout reports whether err is a network timeout (a deadline expiry) —
// the one transport failure the hardened paths treat as retryable.
func IsTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// ReadFullDeadline fills buf from conn under the same deadline discipline;
// the fleet server uses it for the cleartext hello that precedes framing.
func ReadFullDeadline(conn net.Conn, buf []byte, timeout time.Duration) error {
	if timeout <= 0 {
		_, err := io.ReadFull(conn, buf)
		return err
	}
	if err := conn.SetReadDeadline(time.Now().Add(timeout)); err != nil {
		return err
	}
	_, err := io.ReadFull(conn, buf)
	conn.SetReadDeadline(time.Time{})
	return err
}
