package rnn

import "math/rand"

// GRU is a gated recurrent unit cell:
//
//	z_t = sigmoid(Wz x_t + Uz h_{t-1} + bz)   update gate
//	r_t = sigmoid(Wr x_t + Ur h_{t-1} + br)   reset gate
//	c_t = tanh(Wc x_t + Uc (r_t .* h_{t-1}) + bc)
//	h_t = (1 - z_t) .* h_{t-1} + z_t .* c_t
//
// The cell exposes a caching forward pass and the matching backward pass so
// a sequence model can run truncated backpropagation through time.
type GRU struct {
	In, Hidden int

	Wz, Uz     *Mat
	Wr, Ur     *Mat
	Wc, Uc     *Mat
	Bz, Br, Bc []float64
}

// NewGRU returns a GRU with Xavier-initialized weights.
func NewGRU(in, hidden int, rng *rand.Rand) *GRU {
	return &GRU{
		In: in, Hidden: hidden,
		Wz: NewMatRandom(hidden, in, rng), Uz: NewMatRandom(hidden, hidden, rng),
		Wr: NewMatRandom(hidden, in, rng), Ur: NewMatRandom(hidden, hidden, rng),
		Wc: NewMatRandom(hidden, in, rng), Uc: NewMatRandom(hidden, hidden, rng),
		Bz: zeros(hidden), Br: zeros(hidden), Bc: zeros(hidden),
	}
}

// GRUCache stores one step's intermediates for the backward pass.
type GRUCache struct {
	X, HPrev   []float64
	Z, R, C, H []float64
	RH         []float64 // r .* hPrev
}

// Forward computes h_t from x and hPrev, returning the new state and the
// cache needed to backpropagate through this step.
func (g *GRU) Forward(x, hPrev []float64) ([]float64, *GRUCache) {
	H := g.Hidden
	z := zeros(H)
	r := zeros(H)
	c := zeros(H)
	g.Wz.MulVec(x, z)
	tmp := zeros(H)
	g.Uz.MulVec(hPrev, tmp)
	addVec(z, tmp)
	addVec(z, g.Bz)
	sigmoidVec(z)

	g.Wr.MulVec(x, r)
	for i := range tmp {
		tmp[i] = 0
	}
	g.Ur.MulVec(hPrev, tmp)
	addVec(r, tmp)
	addVec(r, g.Br)
	sigmoidVec(r)

	rh := zeros(H)
	for i := range rh {
		rh[i] = r[i] * hPrev[i]
	}
	g.Wc.MulVec(x, c)
	for i := range tmp {
		tmp[i] = 0
	}
	g.Uc.MulVec(rh, tmp)
	addVec(c, tmp)
	addVec(c, g.Bc)
	tanhVec(c)

	h := zeros(H)
	for i := range h {
		h[i] = (1-z[i])*hPrev[i] + z[i]*c[i]
	}
	return h, &GRUCache{
		X: cloneVec(x), HPrev: cloneVec(hPrev),
		Z: z, R: r, C: c, H: h, RH: rh,
	}
}

// GRUGrads accumulates parameter gradients across steps, mirroring the GRU's
// parameter layout.
type GRUGrads struct {
	Wz, Uz, Wr, Ur, Wc, Uc *Mat
	Bz, Br, Bc             []float64
}

// NewGrads returns a zeroed gradient accumulator for g.
func (g *GRU) NewGrads() *GRUGrads {
	return &GRUGrads{
		Wz: NewMat(g.Hidden, g.In), Uz: NewMat(g.Hidden, g.Hidden),
		Wr: NewMat(g.Hidden, g.In), Ur: NewMat(g.Hidden, g.Hidden),
		Wc: NewMat(g.Hidden, g.In), Uc: NewMat(g.Hidden, g.Hidden),
		Bz: zeros(g.Hidden), Br: zeros(g.Hidden), Bc: zeros(g.Hidden),
	}
}

// Backward consumes dh (the gradient of the loss w.r.t. this step's output
// h_t), accumulates parameter gradients into gr, and returns (dhPrev, dx).
func (g *GRU) Backward(cache *GRUCache, dh []float64, gr *GRUGrads) (dhPrev, dx []float64) {
	H := g.Hidden
	dhPrev = zeros(H)
	dx = zeros(g.In)

	dz := zeros(H)
	dc := zeros(H)
	for i := 0; i < H; i++ {
		dz[i] = dh[i] * (cache.C[i] - cache.HPrev[i])
		dc[i] = dh[i] * cache.Z[i]
		dhPrev[i] += dh[i] * (1 - cache.Z[i])
	}

	// Candidate path: dAc = dc * (1 - c^2).
	dAc := zeros(H)
	for i := 0; i < H; i++ {
		dAc[i] = dc[i] * (1 - cache.C[i]*cache.C[i])
	}
	gr.Wc.AddOuter(dAc, cache.X)
	gr.Uc.AddOuter(dAc, cache.RH)
	addVec(gr.Bc, dAc)
	g.Wc.MulVecT(dAc, dx)
	dRH := zeros(H)
	g.Uc.MulVecT(dAc, dRH)
	dr := zeros(H)
	for i := 0; i < H; i++ {
		dr[i] = dRH[i] * cache.HPrev[i]
		dhPrev[i] += dRH[i] * cache.R[i]
	}

	// Reset gate: dAr = dr * r(1-r).
	dAr := zeros(H)
	for i := 0; i < H; i++ {
		dAr[i] = dr[i] * cache.R[i] * (1 - cache.R[i])
	}
	gr.Wr.AddOuter(dAr, cache.X)
	gr.Ur.AddOuter(dAr, cache.HPrev)
	addVec(gr.Br, dAr)
	g.Wr.MulVecT(dAr, dx)
	g.Ur.MulVecT(dAr, dhPrev)

	// Update gate: dAz = dz * z(1-z).
	dAz := zeros(H)
	for i := 0; i < H; i++ {
		dAz[i] = dz[i] * cache.Z[i] * (1 - cache.Z[i])
	}
	gr.Wz.AddOuter(dAz, cache.X)
	gr.Uz.AddOuter(dAz, cache.HPrev)
	addVec(gr.Bz, dAz)
	g.Wz.MulVecT(dAz, dx)
	g.Uz.MulVecT(dAz, dhPrev)

	return dhPrev, dx
}

// params returns views over every parameter slice, in a fixed order shared
// with grads, for the flat optimizer interface.
func (g *GRU) params() [][]float64 {
	return [][]float64{
		g.Wz.Data, g.Uz.Data, g.Wr.Data, g.Ur.Data, g.Wc.Data, g.Uc.Data,
		g.Bz, g.Br, g.Bc,
	}
}

func (gr *GRUGrads) slices() [][]float64 {
	return [][]float64{
		gr.Wz.Data, gr.Uz.Data, gr.Wr.Data, gr.Ur.Data, gr.Wc.Data, gr.Uc.Data,
		gr.Bz, gr.Br, gr.Bc,
	}
}

// flatten concatenates slices into one flat vector (copying).
func flatten(parts [][]float64) []float64 {
	var n int
	for _, p := range parts {
		n += len(p)
	}
	out := make([]float64, 0, n)
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}

// unflatten copies flat back into the parts.
func unflatten(flat []float64, parts [][]float64) {
	i := 0
	for _, p := range parts {
		copy(p, flat[i:i+len(p)])
		i += len(p)
	}
}
