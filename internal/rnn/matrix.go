// Package rnn implements the neural-network substrate for the Skip RNN
// sampling policy (§5.5, Campos et al. [22]): dense matrix/vector math, a
// GRU cell with full backpropagation through time, an Adam optimizer, and a
// next-step sequence predictor whose hidden state drives a trainable skip
// gate. Everything is written from scratch on the standard library; the
// paper's artifact loads pre-trained TensorFlow models, which this package
// replaces with in-process training (see DESIGN.md §4).
package rnn

import (
	"fmt"
	"math"
	"math/rand"
)

// Mat is a dense row-major matrix.
type Mat struct {
	Rows, Cols int
	Data       []float64
}

// NewMat returns a zero matrix.
func NewMat(rows, cols int) *Mat {
	return &Mat{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// NewMatRandom returns a matrix with Xavier/Glorot-scaled uniform entries.
func NewMatRandom(rows, cols int, rng *rand.Rand) *Mat {
	m := NewMat(rows, cols)
	scale := math.Sqrt(6.0 / float64(rows+cols))
	for i := range m.Data {
		m.Data[i] = (rng.Float64()*2 - 1) * scale
	}
	return m
}

// At returns m[r, c].
func (m *Mat) At(r, c int) float64 { return m.Data[r*m.Cols+c] }

// Set assigns m[r, c] = v.
func (m *Mat) Set(r, c int, v float64) { m.Data[r*m.Cols+c] = v }

// MulVec computes out = m * x. out must have length m.Rows and x length
// m.Cols; it panics otherwise.
func (m *Mat) MulVec(x, out []float64) {
	if len(x) != m.Cols || len(out) != m.Rows {
		panic(fmt.Sprintf("rnn: MulVec shape mismatch: (%dx%d) * %d -> %d", m.Rows, m.Cols, len(x), len(out)))
	}
	for r := 0; r < m.Rows; r++ {
		var s float64
		row := m.Data[r*m.Cols : (r+1)*m.Cols]
		for c, v := range row {
			s += v * x[c]
		}
		out[r] = s
	}
}

// MulVecT computes out = m^T * x (x has length m.Rows, out length m.Cols),
// accumulating into out.
func (m *Mat) MulVecT(x, out []float64) {
	if len(x) != m.Rows || len(out) != m.Cols {
		panic(fmt.Sprintf("rnn: MulVecT shape mismatch: (%dx%d)^T * %d -> %d", m.Rows, m.Cols, len(x), len(out)))
	}
	for r := 0; r < m.Rows; r++ {
		xr := x[r]
		if xr == 0 {
			continue
		}
		row := m.Data[r*m.Cols : (r+1)*m.Cols]
		for c, v := range row {
			out[c] += xr * v
		}
	}
}

// AddOuter accumulates m += a * b^T (a has length m.Rows, b length m.Cols),
// the gradient of a MulVec.
func (m *Mat) AddOuter(a, b []float64) {
	if len(a) != m.Rows || len(b) != m.Cols {
		panic(fmt.Sprintf("rnn: AddOuter shape mismatch: %d x %d into (%dx%d)", len(a), len(b), m.Rows, m.Cols))
	}
	for r := 0; r < m.Rows; r++ {
		ar := a[r]
		if ar == 0 {
			continue
		}
		row := m.Data[r*m.Cols : (r+1)*m.Cols]
		for c := range row {
			row[c] += ar * b[c]
		}
	}
}

// Zero clears the matrix in place.
func (m *Mat) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Clone returns a deep copy.
func (m *Mat) Clone() *Mat {
	c := NewMat(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// vector helpers

func zeros(n int) []float64 { return make([]float64, n) }

func cloneVec(x []float64) []float64 { return append([]float64(nil), x...) }

func sigmoid(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

func sigmoidVec(x []float64) {
	for i := range x {
		x[i] = sigmoid(x[i])
	}
}

func tanhVec(x []float64) {
	for i := range x {
		x[i] = math.Tanh(x[i])
	}
}

func addVec(dst, src []float64) {
	for i := range dst {
		dst[i] += src[i]
	}
}

// Adam implements the Adam optimizer over a flat parameter slice.
type Adam struct {
	lr, beta1, beta2, eps float64
	m, v                  []float64
	t                     int
}

// NewAdam returns an Adam optimizer for n parameters.
func NewAdam(n int, lr float64) *Adam {
	return &Adam{lr: lr, beta1: 0.9, beta2: 0.999, eps: 1e-8, m: zeros(n), v: zeros(n)}
}

// Step applies one update: params -= lr * mhat / (sqrt(vhat) + eps).
func (a *Adam) Step(params, grads []float64) {
	if len(params) != len(a.m) || len(grads) != len(a.m) {
		panic("rnn: Adam size mismatch")
	}
	a.t++
	b1c := 1 - math.Pow(a.beta1, float64(a.t))
	b2c := 1 - math.Pow(a.beta2, float64(a.t))
	for i := range params {
		g := grads[i]
		a.m[i] = a.beta1*a.m[i] + (1-a.beta1)*g
		a.v[i] = a.beta2*a.v[i] + (1-a.beta2)*g*g
		params[i] -= a.lr * (a.m[i] / b1c) / (math.Sqrt(a.v[i]/b2c) + a.eps)
	}
}

// clipGrads scales grads in place so their L2 norm is at most maxNorm.
func clipGrads(grads []float64, maxNorm float64) {
	var n float64
	for _, g := range grads {
		n += g * g
	}
	n = math.Sqrt(n)
	if n > maxNorm && n > 0 {
		s := maxNorm / n
		for i := range grads {
			grads[i] *= s
		}
	}
}
