package rnn

import (
	"fmt"
	"math"
	"math/rand"
)

// Predictor is a next-step sequence model: a GRU over normalized
// measurements with a linear readout predicting the next measurement. Its
// hidden state summarizes recent signal dynamics; the Skip RNN's sampling
// gate reads that state to decide whether the next step is worth collecting.
type Predictor struct {
	GRU *GRU
	Wo  *Mat // (d x hidden) readout
	Bo  []float64
	// Mean and Std normalize inputs per feature; both are fitted on the
	// training set.
	Mean, Std []float64
}

// NewPredictor returns an untrained predictor for d-feature inputs.
func NewPredictor(d, hidden int, rng *rand.Rand) *Predictor {
	p := &Predictor{
		GRU:  NewGRU(d, hidden, rng),
		Wo:   NewMatRandom(d, hidden, rng),
		Bo:   zeros(d),
		Mean: zeros(d),
		Std:  make([]float64, d),
	}
	for i := range p.Std {
		p.Std[i] = 1
	}
	return p
}

// FitNormalizer estimates per-feature mean and std from the training
// sequences.
func (p *Predictor) FitNormalizer(seqs [][][]float64) {
	d := len(p.Mean)
	var n float64
	sum := zeros(d)
	sumSq := zeros(d)
	for _, seq := range seqs {
		for _, row := range seq {
			for f := 0; f < d; f++ {
				sum[f] += row[f]
				sumSq[f] += row[f] * row[f]
			}
			n++
		}
	}
	if n == 0 {
		return
	}
	for f := 0; f < d; f++ {
		p.Mean[f] = sum[f] / n
		v := sumSq[f]/n - p.Mean[f]*p.Mean[f]
		if v < 1e-12 {
			v = 1e-12
		}
		p.Std[f] = math.Sqrt(v)
	}
}

// Normalize maps a raw measurement into model space.
func (p *Predictor) Normalize(x []float64) []float64 {
	out := make([]float64, len(x))
	for i := range x {
		out[i] = (x[i] - p.Mean[i]) / p.Std[i]
	}
	return out
}

// predict computes the readout from a hidden state (normalized space).
func (p *Predictor) predict(h []float64) []float64 {
	out := zeros(p.Wo.Rows)
	p.Wo.MulVec(h, out)
	addVec(out, p.Bo)
	return out
}

// TrainConfig controls predictor training.
type TrainConfig struct {
	Epochs       int
	LearningRate float64
	ClipNorm     float64
	Seed         int64
}

// DefaultTrainConfig returns settings that converge on the synthetic
// workloads in a few seconds.
func DefaultTrainConfig() TrainConfig {
	return TrainConfig{Epochs: 4, LearningRate: 5e-3, ClipNorm: 5, Seed: 1}
}

// Train fits the predictor to minimize squared next-step prediction error
// with full backpropagation through time, one Adam step per sequence.
// It returns the mean training loss of the final epoch.
func (p *Predictor) Train(seqs [][][]float64, cfg TrainConfig) (float64, error) {
	if len(seqs) == 0 {
		return 0, fmt.Errorf("rnn: empty training set")
	}
	p.FitNormalizer(seqs)
	params := append(p.GRU.params(), p.Wo.Data, p.Bo)
	flatParams := flatten(params)
	opt := NewAdam(len(flatParams), cfg.LearningRate)
	rng := rand.New(rand.NewSource(cfg.Seed))
	var lastLoss float64
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		order := rng.Perm(len(seqs))
		var total float64
		var steps int
		for _, si := range order {
			seq := seqs[si]
			if len(seq) < 2 {
				continue
			}
			loss, grads := p.sequenceGrads(seq)
			total += loss
			steps += len(seq) - 1
			flatGrads := flatten(grads)
			clipGrads(flatGrads, cfg.ClipNorm)
			opt.Step(flatParams, flatGrads)
			// Write updated parameters back into the model; flatParams
			// is the optimizer's source of truth.
			unflatten(flatParams, params)
		}
		if steps > 0 {
			lastLoss = total / float64(steps)
		}
	}
	return lastLoss, nil
}

// sequenceGrads runs one forward+backward pass over a sequence and returns
// the summed loss and gradients in parameter order (GRU params, Wo, Bo).
func (p *Predictor) sequenceGrads(seq [][]float64) (float64, [][]float64) {
	h := zeros(p.GRU.Hidden)
	caches := make([]*GRUCache, 0, len(seq)-1)
	preds := make([][]float64, 0, len(seq)-1)
	norm := make([][]float64, len(seq))
	for i, row := range seq {
		norm[i] = p.Normalize(row)
	}
	var loss float64
	for t := 0; t < len(seq)-1; t++ {
		var cache *GRUCache
		h, cache = p.GRU.Forward(norm[t], h)
		caches = append(caches, cache)
		yhat := p.predict(h)
		preds = append(preds, yhat)
		for f := range yhat {
			dlt := yhat[f] - norm[t+1][f]
			loss += 0.5 * dlt * dlt
		}
	}
	gr := p.GRU.NewGrads()
	dWo := NewMat(p.Wo.Rows, p.Wo.Cols)
	dBo := zeros(len(p.Bo))
	dhNext := zeros(p.GRU.Hidden)
	for t := len(caches) - 1; t >= 0; t-- {
		dy := zeros(len(p.Bo))
		for f := range dy {
			dy[f] = preds[t][f] - norm[t+1][f]
		}
		dWo.AddOuter(dy, caches[t].H)
		addVec(dBo, dy)
		dh := cloneVec(dhNext)
		p.Wo.MulVecT(dy, dh)
		dhNext, _ = p.GRU.Backward(caches[t], dh, gr)
	}
	grads := append(gr.slices(), dWo.Data, dBo)
	return loss, grads
}

// HiddenStates runs the predictor over a full sequence (teacher forcing) and
// returns the hidden state after each step plus the per-step next-value
// prediction error (L1, normalized space). states[t] is the state after
// consuming seq[t]; errs[t] is the error predicting seq[t+1] from states[t]
// (errs has length len(seq)-1).
func (p *Predictor) HiddenStates(seq [][]float64) (states [][]float64, errs []float64) {
	h := zeros(p.GRU.Hidden)
	states = make([][]float64, len(seq))
	if len(seq) == 0 {
		return states, nil
	}
	errs = make([]float64, len(seq)-1)
	for t := 0; t < len(seq); t++ {
		h, _ = p.GRU.Forward(p.Normalize(seq[t]), h)
		states[t] = cloneVec(h)
		if t < len(seq)-1 {
			yhat := p.predict(h)
			next := p.Normalize(seq[t+1])
			var e float64
			for f := range yhat {
				e += math.Abs(yhat[f] - next[f])
			}
			errs[t] = e
		}
	}
	return states, errs
}

// Gate is the Skip RNN's sampling head: a logistic unit over the predictor's
// hidden state plus a gap ramp. The sample decision for step t is
//
//	collect  <=>  sigmoid(W . h + B + Kappa*(gap-1) + bias) >= 0.5
//
// where gap counts steps since the last collection and bias is the
// per-budget rate adjustment fitted downstream.
type Gate struct {
	W     []float64
	B     float64
	Kappa float64
}

// Logit returns the gate pre-activation for a hidden state and gap.
func (g *Gate) Logit(h []float64, gap int) float64 {
	var s float64
	for i := range g.W {
		s += g.W[i] * h[i]
	}
	return s + g.B + g.Kappa*float64(gap-1)
}

// TrainGate fits the gate by logistic regression: teacher-forced hidden
// states are labeled positive when the next-step prediction error exceeds
// the median error (high surprise should trigger collection). Kappa is set
// so that a gap of maxPeriod steps adds roughly 4 logits, bounding skips.
func TrainGate(p *Predictor, seqs [][][]float64, epochs int, lr float64, seed int64) *Gate {
	g := &Gate{W: zeros(p.GRU.Hidden), Kappa: 4.0 / 16.0}
	// Collect (state, error) pairs.
	var allStates [][]float64
	var allErrs []float64
	for _, seq := range seqs {
		states, errs := p.HiddenStates(seq)
		for t := 0; t < len(errs); t++ {
			allStates = append(allStates, states[t])
			allErrs = append(allErrs, errs[t])
		}
	}
	if len(allErrs) == 0 {
		return g
	}
	tau := medianOf(allErrs)
	rng := rand.New(rand.NewSource(seed))
	for epoch := 0; epoch < epochs; epoch++ {
		for _, i := range rng.Perm(len(allStates)) {
			target := 0.0
			if allErrs[i] > tau {
				target = 1.0
			}
			pred := sigmoid(g.Logit(allStates[i], 1))
			grad := pred - target
			for j := range g.W {
				g.W[j] -= lr * grad * allStates[i][j]
			}
			g.B -= lr * grad
		}
	}
	return g
}

func medianOf(xs []float64) float64 {
	s := cloneVec(xs)
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	return s[len(s)/2]
}
