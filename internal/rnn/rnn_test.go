package rnn

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMatMulVec(t *testing.T) {
	m := NewMat(2, 3)
	copy(m.Data, []float64{1, 2, 3, 4, 5, 6})
	out := make([]float64, 2)
	m.MulVec([]float64{1, 0, -1}, out)
	if out[0] != -2 || out[1] != -2 {
		t.Errorf("MulVec = %v", out)
	}
}

func TestMatMulVecT(t *testing.T) {
	m := NewMat(2, 3)
	copy(m.Data, []float64{1, 2, 3, 4, 5, 6})
	out := make([]float64, 3)
	m.MulVecT([]float64{1, 1}, out)
	want := []float64{5, 7, 9}
	for i := range want {
		if out[i] != want[i] {
			t.Errorf("MulVecT = %v, want %v", out, want)
		}
	}
}

func TestMatAddOuter(t *testing.T) {
	m := NewMat(2, 2)
	m.AddOuter([]float64{1, 2}, []float64{3, 4})
	want := []float64{3, 4, 6, 8}
	for i := range want {
		if m.Data[i] != want[i] {
			t.Errorf("AddOuter = %v, want %v", m.Data, want)
		}
	}
}

func TestMatShapePanics(t *testing.T) {
	m := NewMat(2, 3)
	for name, f := range map[string]func(){
		"MulVec":   func() { m.MulVec(make([]float64, 2), make([]float64, 2)) },
		"MulVecT":  func() { m.MulVecT(make([]float64, 3), make([]float64, 3)) },
		"AddOuter": func() { m.AddOuter(make([]float64, 3), make([]float64, 3)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic on shape mismatch", name)
				}
			}()
			f()
		}()
	}
}

func TestFlattenUnflattenRoundTrip(t *testing.T) {
	prop := func(a, b []float64) bool {
		parts := [][]float64{append([]float64(nil), a...), append([]float64(nil), b...)}
		flat := flatten(parts)
		if len(flat) != len(a)+len(b) {
			return false
		}
		for i := range flat {
			flat[i] += 1
		}
		unflatten(flat, parts)
		for i := range a {
			if parts[0][i] != a[i]+1 {
				return false
			}
		}
		for i := range b {
			if parts[1][i] != b[i]+1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestAdamConvergesOnQuadratic(t *testing.T) {
	// Minimize f(x) = (x-3)^2.
	params := []float64{0}
	opt := NewAdam(1, 0.1)
	for i := 0; i < 500; i++ {
		grad := []float64{2 * (params[0] - 3)}
		opt.Step(params, grad)
	}
	if math.Abs(params[0]-3) > 0.01 {
		t.Errorf("Adam converged to %g, want 3", params[0])
	}
}

func TestClipGrads(t *testing.T) {
	g := []float64{3, 4} // norm 5
	clipGrads(g, 1)
	if math.Abs(math.Hypot(g[0], g[1])-1) > 1e-12 {
		t.Errorf("clipped norm = %g", math.Hypot(g[0], g[1]))
	}
	h := []float64{0.3, 0.4}
	clipGrads(h, 1)
	if h[0] != 0.3 || h[1] != 0.4 {
		t.Errorf("under-norm grads modified: %v", h)
	}
}

// TestGRUGradientCheck verifies the analytic BPTT gradients against central
// finite differences on a 3-step unrolled loss — the canonical correctness
// test for a hand-written backward pass.
func TestGRUGradientCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const (
		din    = 3
		hidden = 4
		steps  = 3
		eps    = 1e-5
	)
	g := NewGRU(din, hidden, rng)
	xs := make([][]float64, steps)
	for i := range xs {
		xs[i] = make([]float64, din)
		for j := range xs[i] {
			xs[i][j] = rng.NormFloat64()
		}
	}
	target := make([]float64, hidden)
	for i := range target {
		target[i] = rng.NormFloat64()
	}
	// Loss: 0.5*||h_T - target||^2 after `steps` GRU steps.
	loss := func() float64 {
		h := make([]float64, hidden)
		for _, x := range xs {
			h, _ = g.Forward(x, h)
		}
		var l float64
		for i := range h {
			d := h[i] - target[i]
			l += 0.5 * d * d
		}
		return l
	}
	// Analytic gradients.
	h := make([]float64, hidden)
	caches := make([]*GRUCache, steps)
	for i, x := range xs {
		h, caches[i] = g.Forward(x, h)
	}
	gr := g.NewGrads()
	dh := make([]float64, hidden)
	for i := range dh {
		dh[i] = h[i] - target[i]
	}
	for i := steps - 1; i >= 0; i-- {
		dh, _ = g.Backward(caches[i], dh, gr)
	}
	analytic := flatten(gr.slices())
	params := g.params()
	flat := flatten(params)
	checked := 0
	for pi := 0; pi < len(flat); pi += 4 { // sample every 4th parameter
		orig := flat[pi]
		flat[pi] = orig + eps
		unflatten(flat, params)
		lPlus := loss()
		flat[pi] = orig - eps
		unflatten(flat, params)
		lMinus := loss()
		flat[pi] = orig
		unflatten(flat, params)
		numeric := (lPlus - lMinus) / (2 * eps)
		if diff := math.Abs(numeric - analytic[pi]); diff > 1e-5*(1+math.Abs(numeric)) {
			t.Fatalf("param %d: numeric %g vs analytic %g", pi, numeric, analytic[pi])
		}
		checked++
	}
	if checked < 20 {
		t.Fatalf("only %d parameters checked", checked)
	}
}

// TestGRUInputGradientCheck verifies dx from Backward.
func TestGRUInputGradientCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	const (
		din    = 2
		hidden = 3
		eps    = 1e-5
	)
	g := NewGRU(din, hidden, rng)
	x := []float64{0.5, -0.3}
	h0 := []float64{0.1, -0.2, 0.3}
	target := []float64{0.4, 0.2, -0.1}
	loss := func(xv []float64) float64 {
		h, _ := g.Forward(xv, h0)
		var l float64
		for i := range h {
			d := h[i] - target[i]
			l += 0.5 * d * d
		}
		return l
	}
	h, cache := g.Forward(x, h0)
	dh := make([]float64, hidden)
	for i := range dh {
		dh[i] = h[i] - target[i]
	}
	_, dx := g.Backward(cache, dh, g.NewGrads())
	for i := range x {
		xp := append([]float64(nil), x...)
		xp[i] += eps
		lPlus := loss(xp)
		xp[i] -= 2 * eps
		lMinus := loss(xp)
		numeric := (lPlus - lMinus) / (2 * eps)
		if math.Abs(numeric-dx[i]) > 1e-6*(1+math.Abs(numeric)) {
			t.Fatalf("dx[%d]: numeric %g vs analytic %g", i, numeric, dx[i])
		}
	}
}

func TestGRUForwardDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	g := NewGRU(2, 3, rng)
	x := []float64{1, -1}
	h0 := []float64{0, 0, 0}
	h1, _ := g.Forward(x, h0)
	h2, _ := g.Forward(x, h0)
	for i := range h1 {
		if h1[i] != h2[i] {
			t.Fatal("forward pass not deterministic")
		}
	}
	// State must stay bounded (gates + tanh).
	for i := range h1 {
		if math.Abs(h1[i]) > 1 {
			t.Errorf("|h[%d]| = %g > 1", i, math.Abs(h1[i]))
		}
	}
}

func TestPredictorTrainingReducesLoss(t *testing.T) {
	// Learnable task: slow sinusoids. Next-step prediction loss after
	// training must beat the untrained model.
	rng := rand.New(rand.NewSource(45))
	var seqs [][][]float64
	for s := 0; s < 12; s++ {
		seq := make([][]float64, 40)
		phase := rng.Float64() * 6
		for t := range seq {
			seq[t] = []float64{math.Sin(0.3*float64(t) + phase)}
		}
		seqs = append(seqs, seq)
	}
	evalLoss := func(p *Predictor) float64 {
		var total float64
		var n int
		for _, seq := range seqs {
			_, errs := p.HiddenStates(seq)
			for _, e := range errs {
				total += e
				n++
			}
		}
		return total / float64(n)
	}
	p := NewPredictor(1, 8, rng)
	p.FitNormalizer(seqs)
	before := evalLoss(p)
	cfg := DefaultTrainConfig()
	cfg.Epochs = 6
	last, err := p.Train(seqs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	after := evalLoss(p)
	if after >= before {
		t.Errorf("training did not reduce loss: before %g after %g (train loss %g)", before, after, last)
	}
}

func TestPredictorEmptyTraining(t *testing.T) {
	rng := rand.New(rand.NewSource(46))
	p := NewPredictor(1, 4, rng)
	if _, err := p.Train(nil, DefaultTrainConfig()); err == nil {
		t.Error("empty training set accepted")
	}
}

func TestNormalizer(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	p := NewPredictor(2, 4, rng)
	seqs := [][][]float64{{{10, -5}, {12, -7}, {14, -3}, {8, -5}}}
	p.FitNormalizer(seqs)
	if math.Abs(p.Mean[0]-11) > 1e-9 || math.Abs(p.Mean[1]+5) > 1e-9 {
		t.Errorf("means = %v", p.Mean)
	}
	n := p.Normalize([]float64{11, -5})
	if math.Abs(n[0]) > 1e-9 || math.Abs(n[1]) > 1e-9 {
		t.Errorf("normalized mean not ~0: %v", n)
	}
}

func TestGateTrainingSeparates(t *testing.T) {
	// After training, the gate should fire more on high-surprise states
	// than low-surprise ones.
	rng := rand.New(rand.NewSource(48))
	var seqs [][][]float64
	for s := 0; s < 10; s++ {
		seq := make([][]float64, 60)
		for t := range seq {
			v := 0.05 * rng.NormFloat64()
			if t >= 30 { // volatile second half
				v = 2 * math.Sin(2.5*float64(t))
			}
			seq[t] = []float64{v}
		}
		seqs = append(seqs, seq)
	}
	p := NewPredictor(1, 8, rng)
	cfg := DefaultTrainConfig()
	cfg.Epochs = 5
	if _, err := p.Train(seqs, cfg); err != nil {
		t.Fatal(err)
	}
	g := TrainGate(p, seqs, 3, 0.05, 1)
	var flatLogit, volLogit float64
	var nf, nv int
	for _, seq := range seqs {
		states, _ := p.HiddenStates(seq)
		for t, h := range states {
			if t < 25 {
				flatLogit += g.Logit(h, 1)
				nf++
			} else if t >= 35 {
				volLogit += g.Logit(h, 1)
				nv++
			}
		}
	}
	if volLogit/float64(nv) <= flatLogit/float64(nf) {
		t.Errorf("gate does not separate: flat %g vs volatile %g",
			flatLogit/float64(nf), volLogit/float64(nv))
	}
}

func TestGateGapRamp(t *testing.T) {
	g := &Gate{W: []float64{0}, Kappa: 0.25}
	if g.Logit([]float64{0}, 1) != 0 {
		t.Error("gap 1 should add nothing")
	}
	if g.Logit([]float64{0}, 17) != 4 {
		t.Errorf("gap 17 logit = %g, want 4", g.Logit([]float64{0}, 17))
	}
}

func BenchmarkGRUForward(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	g := NewGRU(6, 12, rng)
	x := make([]float64, 6)
	h := make([]float64, 12)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h, _ = g.Forward(x, h)
	}
}

func BenchmarkPredictorTrainEpoch(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	var seqs [][][]float64
	for s := 0; s < 4; s++ {
		seq := make([][]float64, 50)
		for t := range seq {
			seq[t] = []float64{math.Sin(0.2 * float64(t))}
		}
		seqs = append(seqs, seq)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := NewPredictor(1, 8, rng)
		cfg := DefaultTrainConfig()
		cfg.Epochs = 1
		if _, err := p.Train(seqs, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
