package policy

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dataset"
)

// flatSeq returns a constant sequence, volatileSeq a fast-swinging one.
func flatSeq(T, d int) [][]float64 {
	seq := make([][]float64, T)
	for t := range seq {
		seq[t] = make([]float64, d)
	}
	return seq
}

func volatileSeq(T, d int) [][]float64 {
	seq := make([][]float64, T)
	for t := range seq {
		seq[t] = make([]float64, d)
		for f := range seq[t] {
			seq[t][f] = 3 * math.Sin(float64(t)*2.1+float64(f))
		}
	}
	return seq
}

func checkIndices(t *testing.T, idx []int, T int) {
	t.Helper()
	prev := -1
	for _, i := range idx {
		if i <= prev || i >= T {
			t.Fatalf("indices %v not strictly increasing in [0, %d)", idx, T)
		}
		prev = i
	}
}

func TestUniformExactCount(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, rate := range []float64{0.3, 0.5, 0.7, 1.0} {
		for _, T := range []int{23, 50, 206} {
			u := NewUniform(rate)
			idx := u.Sample(flatSeq(T, 2), rng)
			want := int(rate * float64(T))
			if want < 1 {
				want = 1
			}
			if len(idx) != want {
				t.Errorf("rate %g T %d: collected %d, want %d", rate, T, len(idx), want)
			}
			checkIndices(t, idx, T)
		}
	}
}

func TestUniformDataIndependent(t *testing.T) {
	// The Uniform policy's count must not depend on the data — that is
	// why it leaks nothing.
	rng := rand.New(rand.NewSource(2))
	u := NewUniform(0.6)
	a := u.Sample(flatSeq(50, 3), rng)
	b := u.Sample(volatileSeq(50, 3), rng)
	if len(a) != len(b) {
		t.Errorf("Uniform count varies with data: %d vs %d", len(a), len(b))
	}
}

func TestRandomExactCount(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	r := NewRandom(0.7)
	idx := r.Sample(flatSeq(25, 1), rng)
	if len(idx) != 17 {
		t.Errorf("collected %d, want 17 (the paper's Figure 1 example)", len(idx))
	}
	checkIndices(t, idx, 25)
}

func TestLinearAdaptsToVolatility(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	l := NewLinear(0.5)
	flat := l.Sample(flatSeq(50, 3), rng)
	vol := l.Sample(volatileSeq(50, 3), rng)
	if len(vol) <= len(flat) {
		t.Errorf("Linear collected %d on volatile vs %d on flat; should over-sample volatility", len(vol), len(flat))
	}
	checkIndices(t, flat, 50)
	checkIndices(t, vol, 50)
}

func TestLinearThresholdMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	seq := volatileSeq(100, 2)
	prev := 101
	for _, th := range []float64{0, 0.5, 2, 8, 100} {
		n := len(NewLinear(th).Sample(seq, rng))
		if n > prev {
			t.Fatalf("collection count increased with threshold at %g", th)
		}
		prev = n
	}
}

func TestLinearZeroThresholdCollectsAll(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	idx := NewLinear(0).Sample(volatileSeq(40, 1), rng)
	if len(idx) != 40 {
		t.Errorf("threshold 0 collected %d of 40", len(idx))
	}
}

func TestDeviationAdaptsToVolatility(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	d := NewDeviation(0.4)
	flat := d.Sample(flatSeq(50, 3), rng)
	vol := d.Sample(volatileSeq(50, 3), rng)
	if len(vol) <= len(flat) {
		t.Errorf("Deviation collected %d on volatile vs %d on flat", len(vol), len(flat))
	}
	checkIndices(t, flat, 50)
	checkIndices(t, vol, 50)
}

func TestDeviationPeriodDoubling(t *testing.T) {
	// On a flat sequence the period doubles each step — 0, 1, 3, 7 —
	// then advances at the maxPeriod cap of 4.
	rng := rand.New(rand.NewSource(8))
	idx := NewDeviation(1).Sample(flatSeq(64, 1), rng)
	want := []int{0, 1, 3, 7, 11, 15, 19, 23, 27, 31, 35, 39, 43, 47, 51, 55, 59, 63}
	if len(idx) != len(want) {
		t.Fatalf("indices %v, want %v", idx, want)
	}
	for i := range want {
		if idx[i] != want[i] {
			t.Fatalf("indices %v, want %v", idx, want)
		}
	}
}

func TestDeviationEmptySequence(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	if got := NewDeviation(1).Sample(nil, rng); got != nil {
		t.Errorf("empty sequence gave %v", got)
	}
}

func TestFitHitsTargetRate(t *testing.T) {
	d := dataset.MustLoad("epilepsy", dataset.Options{Seed: 7, MaxSequences: 24})
	var train [][][]float64
	for _, s := range d.Sequences {
		train = append(train, s.Values)
	}
	for _, kind := range []AdaptiveKind{KindLinear, KindDeviation} {
		for _, rate := range []float64{0.4, 0.7} {
			res, err := Fit(kind, train, rate)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(res.AchievedRate-rate) > 0.08 {
				t.Errorf("%s rate %g: achieved %g (threshold %g)", kind, rate, res.AchievedRate, res.Threshold)
			}
		}
	}
}

func TestFitGridMonotoneThresholds(t *testing.T) {
	d := dataset.MustLoad("activity", dataset.Options{Seed: 7, MaxSequences: 36})
	var train [][][]float64
	for _, s := range d.Sequences {
		train = append(train, s.Values)
	}
	grid, err := FitGrid(KindLinear, train)
	if err != nil {
		t.Fatal(err)
	}
	if len(grid) != 8 {
		t.Fatalf("grid has %d entries", len(grid))
	}
	// Higher target rates need lower thresholds.
	prev := math.Inf(1)
	for r := 3; r <= 10; r++ {
		rate := float64(r) / 10
		res := grid[math.Round(rate*10)/10]
		if res.Threshold > prev+1e-9 {
			t.Errorf("threshold not non-increasing at rate %g", rate)
		}
		prev = res.Threshold
	}
}

func TestFitEmptyTraining(t *testing.T) {
	if _, err := Fit(KindLinear, nil, 0.5); err == nil {
		t.Error("empty training set accepted")
	}
}

func TestNewAdaptiveUnknownKind(t *testing.T) {
	if _, err := NewAdaptive("mystery", 1); err == nil {
		t.Error("unknown kind accepted")
	}
}

// TestAdaptiveLeaksCollectionRate is the paper's §3.2 observation as a unit
// test: adaptive policies collect different counts for different events.
func TestAdaptiveLeaksCollectionRate(t *testing.T) {
	d := dataset.MustLoad("epilepsy", dataset.Options{Seed: 11, MaxSequences: 40})
	var train [][][]float64
	for _, s := range d.Sequences {
		train = append(train, s.Values)
	}
	res, err := Fit(KindLinear, train, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	l := NewLinear(res.Threshold)
	rng := rand.New(rand.NewSource(10))
	counts := map[int][]float64{}
	for _, s := range d.Sequences {
		counts[s.Label] = append(counts[s.Label], float64(len(l.Sample(s.Values, rng))))
	}
	walking, running := counts[1], counts[2]
	var mw, mr float64
	for _, c := range walking {
		mw += c
	}
	for _, c := range running {
		mr += c
	}
	mw /= float64(len(walking))
	mr /= float64(len(running))
	if mr <= mw*1.2 {
		t.Errorf("running mean count %g not clearly above walking %g; no leakage to protect against", mr, mw)
	}
}

func BenchmarkLinearSample(b *testing.B) {
	seq := volatileSeq(206, 3)
	l := NewLinear(1.5)
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = l.Sample(seq, rng)
	}
}

func BenchmarkDeviationSample(b *testing.B) {
	seq := volatileSeq(206, 3)
	d := NewDeviation(0.8)
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = d.Sample(seq, rng)
	}
}
