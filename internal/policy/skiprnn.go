package policy

import (
	"fmt"
	"math/rand"

	"repro/internal/rnn"
)

// SkipRNN is the neural adaptive policy of §5.5 (Campos et al. [22]): a
// recurrent model that learns when to sample. The trained GRU predictor's
// hidden state feeds a logistic gate; the gate fires (collect) when recent
// dynamics suggest the next measurement will be surprising. A per-budget
// bias shifts the gate's operating point to hit a target collection rate,
// and a gap ramp bounds how long the policy can skip.
//
// The paper uses pre-trained TensorFlow Skip RNNs; this reproduction trains
// the model in-process (internal/rnn) — see DESIGN.md §4.
type SkipRNN struct {
	pred *rnn.Predictor
	gate *rnn.Gate
	bias float64
}

// NewSkipRNN wraps a trained predictor and gate with a rate bias.
func NewSkipRNN(pred *rnn.Predictor, gate *rnn.Gate, bias float64) *SkipRNN {
	return &SkipRNN{pred: pred, gate: gate, bias: bias}
}

// Name implements Policy.
func (s *SkipRNN) Name() string { return "skiprnn" }

// Bias returns the fitted rate-adjustment bias.
func (s *SkipRNN) Bias() float64 { return s.bias }

// WithBias returns a copy of the policy using a different rate bias; the
// underlying model is shared.
func (s *SkipRNN) WithBias(bias float64) *SkipRNN {
	return &SkipRNN{pred: s.pred, gate: s.gate, bias: bias}
}

// Sample implements Policy. The policy is causal: the GRU state only
// advances on measurements the policy chose to collect, so skipped values
// are never observed.
func (s *SkipRNN) Sample(seq [][]float64, rng *rand.Rand) []int {
	T := len(seq)
	if T == 0 {
		return nil
	}
	h := make([]float64, s.pred.GRU.Hidden)
	// Always collect the first element (the interpolation anchor).
	h, _ = s.pred.GRU.Forward(s.pred.Normalize(seq[0]), h)
	idx := []int{0}
	last := 0
	for t := 1; t < T; t++ {
		gap := t - last
		if s.gate.Logit(h, gap)+s.bias >= 0 {
			h, _ = s.pred.GRU.Forward(s.pred.Normalize(seq[t]), h)
			idx = append(idx, t)
			last = t
		}
	}
	return idx
}

// SkipRNNModel bundles a trained Skip RNN so one training run serves every
// budget (only the bias changes per rate).
type SkipRNNModel struct {
	Pred *rnn.Predictor
	Gate *rnn.Gate
}

// SkipRNNTrainConfig controls Skip RNN training.
type SkipRNNTrainConfig struct {
	Hidden     int
	Epochs     int
	GateEpochs int
	Seed       int64
}

// DefaultSkipRNNTrainConfig returns a configuration that trains in seconds
// on the evaluation workloads.
func DefaultSkipRNNTrainConfig() SkipRNNTrainConfig {
	return SkipRNNTrainConfig{Hidden: 12, Epochs: 3, GateEpochs: 2, Seed: 1}
}

// TrainSkipRNN trains the predictor and gate on the training sequences.
func TrainSkipRNN(train [][][]float64, cfg SkipRNNTrainConfig) (*SkipRNNModel, error) {
	if len(train) == 0 {
		return nil, fmt.Errorf("policy: empty Skip RNN training set")
	}
	if len(train[0]) == 0 {
		return nil, fmt.Errorf("policy: empty training sequence")
	}
	d := len(train[0][0])
	rng := rand.New(rand.NewSource(cfg.Seed))
	pred := rnn.NewPredictor(d, cfg.Hidden, rng)
	tc := rnn.DefaultTrainConfig()
	tc.Epochs = cfg.Epochs
	tc.Seed = cfg.Seed
	if _, err := pred.Train(train, tc); err != nil {
		return nil, err
	}
	gate := rnn.TrainGate(pred, train, cfg.GateEpochs, 0.05, cfg.Seed)
	return &SkipRNNModel{Pred: pred, Gate: gate}, nil
}

// FitBias bisects for the gate bias at which the Skip RNN's mean collection
// rate over train matches targetRate. The rate is monotone non-decreasing in
// the bias.
func (m *SkipRNNModel) FitBias(train [][][]float64, targetRate float64) (*SkipRNN, FitResult) {
	rate := func(bias float64) float64 {
		p := NewSkipRNN(m.Pred, m.Gate, bias)
		rng := rand.New(rand.NewSource(1))
		var collected, total int
		for _, seq := range train {
			collected += len(p.Sample(seq, rng))
			total += len(seq)
		}
		return float64(collected) / float64(total)
	}
	lo, hi := -30.0, 30.0
	if rate(lo) >= targetRate {
		return NewSkipRNN(m.Pred, m.Gate, lo), FitResult{Threshold: lo, AchievedRate: rate(lo)}
	}
	if rate(hi) <= targetRate {
		return NewSkipRNN(m.Pred, m.Gate, hi), FitResult{Threshold: hi, AchievedRate: rate(hi)}
	}
	for i := 0; i < 40; i++ {
		mid := (lo + hi) / 2
		if rate(mid) < targetRate {
			lo = mid
		} else {
			hi = mid
		}
	}
	bias := (lo + hi) / 2
	return NewSkipRNN(m.Pred, m.Gate, bias), FitResult{Threshold: bias, AchievedRate: rate(bias)}
}
