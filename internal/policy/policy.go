// Package policy implements the sampling policies of the paper's evaluation
// (§5.1): the non-adaptive Uniform and Random baselines and the adaptive
// Linear [Chatterjea & Havinga] and Deviation [LiteSense] policies, plus the
// offline per-budget threshold fitting both adaptive policies require. The
// Skip RNN policy (§5.5) lives in skiprnn.go and builds on internal/rnn.
//
// A policy decides, online, which time steps of a T-step sequence to
// collect. Adaptive policies see only the measurements they collected —
// sampling is causal — and their collection counts therefore track the
// signal's volatility, which is exactly the information the message-size
// side-channel exposes.
package policy

import (
	"math"
	"math/rand"
)

// Policy selects which time steps of a sequence to collect.
type Policy interface {
	// Name identifies the policy in reports ("uniform", "linear", ...).
	Name() string
	// Sample returns the collected indices, strictly increasing, each in
	// [0, len(seq)). seq is the full T x d ground-truth sequence; adaptive
	// implementations must only inspect rows they chose to collect.
	Sample(seq [][]float64, rng *rand.Rand) []int
}

// l1 returns the L1 distance between two measurements.
func l1(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += math.Abs(a[i] - b[i])
	}
	return s
}

// Uniform collects k = floor(rate*T) elements at evenly spaced indices
// t = r*ceil(T/k), topping up with random unused indices when k does not
// divide T (§5.1). Its collection count is fixed, so it leaks nothing — the
// paper's no-leakage baseline.
type Uniform struct {
	rate float64
}

// NewUniform returns a Uniform policy with the given collection rate.
func NewUniform(rate float64) *Uniform { return &Uniform{rate: rate} }

// Name implements Policy.
func (u *Uniform) Name() string { return "uniform" }

// Rate returns the configured collection fraction.
func (u *Uniform) Rate() float64 { return u.rate }

// Sample implements Policy.
func (u *Uniform) Sample(seq [][]float64, rng *rand.Rand) []int {
	T := len(seq)
	k := collectCount(T, u.rate)
	step := (T + k - 1) / k // ceil(T/k)
	used := make([]bool, T)
	idx := make([]int, 0, k)
	for r := 0; r*step < T && len(idx) < k; r++ {
		idx = append(idx, r*step)
		used[r*step] = true
	}
	// Top up with random unused indices, then restore sorted order.
	for len(idx) < k {
		t := rng.Intn(T)
		if !used[t] {
			used[t] = true
			idx = append(idx, t)
		}
	}
	insertionSort(idx)
	return idx
}

// Random collects k = floor(rate*T) elements chosen uniformly at random
// without replacement. The paper evaluates it but reports Uniform instead,
// which dominates it (§5.1); it is included for the same comparison.
type Random struct {
	rate float64
}

// NewRandom returns a Random policy with the given collection rate.
func NewRandom(rate float64) *Random { return &Random{rate: rate} }

// Name implements Policy.
func (r *Random) Name() string { return "random" }

// Sample implements Policy.
func (r *Random) Sample(seq [][]float64, rng *rand.Rand) []int {
	T := len(seq)
	k := collectCount(T, r.rate)
	idx := rng.Perm(T)[:k]
	out := append([]int(nil), idx...)
	insertionSort(out)
	return out
}

// Linear is the adaptive policy of Chatterjea & Havinga [25]: it compares
// consecutive collected measurements; when the absolute difference exceeds
// the threshold it resets the collection period to one (sample the next
// element), otherwise it stretches the period by one step, up to a maximum
// interval (the original algorithm likewise bounds the sampling interval so
// a quiet signal cannot silence the sensor).
type Linear struct {
	threshold float64
	maxPeriod int
}

// NewLinear returns a Linear policy with an already-fitted threshold.
func NewLinear(threshold float64) *Linear { return &Linear{threshold: threshold, maxPeriod: 16} }

// Name implements Policy.
func (l *Linear) Name() string { return "linear" }

// Threshold returns the fitted comparison threshold.
func (l *Linear) Threshold() float64 { return l.threshold }

// Sample implements Policy.
func (l *Linear) Sample(seq [][]float64, rng *rand.Rand) []int {
	T := len(seq)
	idx := []int{0}
	period := 1
	prev := seq[0]
	for t := period; t < T; {
		cur := seq[t]
		idx = append(idx, t)
		if l1(cur, prev) > l.threshold {
			period = 1
		} else if period < l.maxPeriod {
			period++
		}
		prev = cur
		t += period
	}
	return idx
}

// Deviation is the adaptive policy of LiteSense [96]: exponentially weighted
// moving estimates of the signal mean and deviation control the collection
// period, which halves when the tracked deviation exceeds the threshold and
// doubles when it stays below.
type Deviation struct {
	threshold float64
	// gamma and beta are the EWMA weights for deviation and mean; the
	// defaults follow LiteSense's recommended smoothing.
	gamma, beta float64
	maxPeriod   int
}

// NewDeviation returns a Deviation policy with an already-fitted threshold.
func NewDeviation(threshold float64) *Deviation {
	return &Deviation{threshold: threshold, gamma: 0.7, beta: 0.3, maxPeriod: 4}
}

// Name implements Policy.
func (d *Deviation) Name() string { return "deviation" }

// Threshold returns the fitted deviation threshold.
func (d *Deviation) Threshold() float64 { return d.threshold }

// Sample implements Policy.
func (d *Deviation) Sample(seq [][]float64, rng *rand.Rand) []int {
	T := len(seq)
	if T == 0 {
		return nil
	}
	nf := len(seq[0])
	mean := append([]float64(nil), seq[0]...)
	dev := 0.0
	idx := []int{0}
	period := 1
	for t := period; t < T; {
		cur := seq[t]
		idx = append(idx, t)
		// Update the tracked deviation before the mean, so the
		// deviation measures surprise relative to the running estimate.
		var dist float64
		for f := 0; f < nf; f++ {
			dist += math.Abs(cur[f] - mean[f])
		}
		dev = (1-d.gamma)*dev + d.gamma*dist
		for f := 0; f < nf; f++ {
			mean[f] = (1-d.beta)*mean[f] + d.beta*cur[f]
		}
		if dev > d.threshold {
			period = maxInt(1, period/2)
		} else {
			period = minInt(d.maxPeriod, period*2)
		}
		t += period
	}
	return idx
}

// collectCount mirrors energy.CollectCount without importing it: floor(rate*T)
// clamped to [1, T].
func collectCount(T int, rate float64) int {
	k := int(rate * float64(T))
	if k < 1 {
		k = 1
	}
	if k > T {
		k = T
	}
	return k
}

func insertionSort(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
