package policy

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dataset"
)

// trainedModel trains a small Skip RNN on an Epilepsy slice once per test.
func trainedModel(t *testing.T) (*SkipRNNModel, [][][]float64, *dataset.Dataset) {
	t.Helper()
	d := dataset.MustLoad("epilepsy", dataset.Options{Seed: 13, MaxSequences: 32})
	var train [][][]float64
	for _, s := range d.Sequences[:16] {
		train = append(train, s.Values)
	}
	cfg := SkipRNNTrainConfig{Hidden: 6, Epochs: 1, GateEpochs: 1, Seed: 1}
	m, err := TrainSkipRNN(train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m, train, d
}

func TestTrainSkipRNNErrors(t *testing.T) {
	cfg := DefaultSkipRNNTrainConfig()
	if _, err := TrainSkipRNN(nil, cfg); err == nil {
		t.Error("empty training set accepted")
	}
	if _, err := TrainSkipRNN([][][]float64{{}}, cfg); err == nil {
		t.Error("empty sequence accepted")
	}
}

func TestSkipRNNValidIndices(t *testing.T) {
	m, train, _ := trainedModel(t)
	p := NewSkipRNN(m.Pred, m.Gate, 0)
	rng := rand.New(rand.NewSource(1))
	for _, seq := range train[:4] {
		idx := p.Sample(seq, rng)
		checkIndices(t, idx, len(seq))
		if len(idx) == 0 || idx[0] != 0 {
			t.Fatalf("first index must be 0, got %v", idx[:minLen(idx, 3)])
		}
	}
	if got := p.Sample(nil, rng); got != nil {
		t.Errorf("empty sequence gave %v", got)
	}
}

func TestSkipRNNBiasMonotone(t *testing.T) {
	m, train, _ := trainedModel(t)
	rng := rand.New(rand.NewSource(2))
	count := func(bias float64) int {
		p := NewSkipRNN(m.Pred, m.Gate, bias)
		total := 0
		for _, seq := range train[:6] {
			total += len(p.Sample(seq, rng))
		}
		return total
	}
	lo, mid, hi := count(-10), count(0), count(10)
	if !(lo <= mid && mid <= hi) {
		t.Errorf("collection count not monotone in bias: %d, %d, %d", lo, mid, hi)
	}
	if lo == hi {
		t.Error("bias has no effect on collection count")
	}
}

func TestSkipRNNFitBiasHitsRate(t *testing.T) {
	m, train, _ := trainedModel(t)
	for _, rate := range []float64{0.4, 0.8} {
		p, fit := m.FitBias(train, rate)
		if math.Abs(fit.AchievedRate-rate) > 0.1 {
			t.Errorf("rate %g: achieved %g (bias %g)", rate, fit.AchievedRate, fit.Threshold)
		}
		if p.Name() != "skiprnn" {
			t.Errorf("Name = %q", p.Name())
		}
	}
}

func TestSkipRNNWithBiasSharesModel(t *testing.T) {
	m, _, _ := trainedModel(t)
	p := NewSkipRNN(m.Pred, m.Gate, 1)
	q := p.WithBias(-1)
	if q.Bias() != -1 || p.Bias() != 1 {
		t.Errorf("biases: p=%g q=%g", p.Bias(), q.Bias())
	}
	if q.pred != p.pred || q.gate != p.gate {
		t.Error("WithBias copied the model")
	}
}

// TestSkipRNNDataDependence: the trained policy must collect different
// counts for calm vs violent events — the leakage §5.5 demonstrates.
func TestSkipRNNDataDependence(t *testing.T) {
	m, train, d := trainedModel(t)
	p, _ := m.FitBias(train, 0.6)
	rng := rand.New(rand.NewSource(3))
	counts := map[int][]float64{}
	for _, s := range d.Sequences {
		counts[s.Label] = append(counts[s.Label], float64(len(p.Sample(s.Values, rng))))
	}
	mean := func(xs []float64) float64 {
		var t float64
		for _, x := range xs {
			t += x
		}
		return t / float64(len(xs))
	}
	walking, running := mean(counts[1]), mean(counts[2])
	if running <= walking {
		t.Errorf("skip RNN collected %.1f for running vs %.1f for walking; expected data dependence",
			running, walking)
	}
}

// TestSkipRNNCausality: the policy's decisions must not depend on values it
// never collected. Perturbing an uncollected step must not change the
// decisions before that step.
func TestSkipRNNCausality(t *testing.T) {
	m, train, _ := trainedModel(t)
	p := NewSkipRNN(m.Pred, m.Gate, 0)
	rng := rand.New(rand.NewSource(4))
	seq := train[0]
	idx := p.Sample(seq, rng)
	collected := map[int]bool{}
	for _, i := range idx {
		collected[i] = true
	}
	// Find an uncollected step and perturb it.
	perturbAt := -1
	for t := 1; t < len(seq); t++ {
		if !collected[t] {
			perturbAt = t
			break
		}
	}
	if perturbAt == -1 {
		t.Skip("policy collected everything at bias 0")
	}
	mod := make([][]float64, len(seq))
	for i := range seq {
		row := append([]float64(nil), seq[i]...)
		if i == perturbAt {
			for f := range row {
				row[f] += 100
			}
		}
		mod[i] = row
	}
	idx2 := p.Sample(mod, rng)
	// Decisions up to perturbAt must be identical.
	for i := 0; i < len(idx) && i < len(idx2); i++ {
		if idx[i] > perturbAt || idx2[i] > perturbAt {
			break
		}
		if idx[i] != idx2[i] {
			t.Fatalf("decision before the perturbation changed: %v vs %v", idx[:i+1], idx2[:i+1])
		}
	}
}

func minLen(a []int, n int) int {
	if len(a) < n {
		return len(a)
	}
	return n
}
