package policy

import (
	"fmt"
	"math"
	"math/rand"
)

// This file implements the offline training step both threshold-based
// adaptive policies require (§5.1): for each energy budget, choose the
// threshold whose average collection rate over the training data matches the
// budget's Uniform rate. Collection rate decreases monotonically in the
// threshold for both Linear and Deviation, so a bisection search suffices.

// AdaptiveKind names a threshold-based adaptive policy for fitting.
type AdaptiveKind string

// The two threshold-based adaptive policies.
const (
	KindLinear    AdaptiveKind = "linear"
	KindDeviation AdaptiveKind = "deviation"
)

// NewAdaptive constructs a policy of the given kind with a threshold.
func NewAdaptive(kind AdaptiveKind, threshold float64) (Policy, error) {
	switch kind {
	case KindLinear:
		return NewLinear(threshold), nil
	case KindDeviation:
		return NewDeviation(threshold), nil
	default:
		return nil, fmt.Errorf("policy: unknown adaptive kind %q", kind)
	}
}

// FitResult reports a fitted threshold and the collection rate it achieves
// on the training data.
type FitResult struct {
	Threshold    float64
	AchievedRate float64
}

// Fit bisects for the threshold at which the policy's mean collection rate
// over train matches targetRate. train holds the training sequences (each
// T x d). The fit is deterministic given the sequences.
func Fit(kind AdaptiveKind, train [][][]float64, targetRate float64) (FitResult, error) {
	if len(train) == 0 {
		return FitResult{}, fmt.Errorf("policy: empty training set")
	}
	// Threshold upper bound: the largest consecutive L1 step in the data;
	// beyond it the policy never resets and collects its minimum.
	hi := 1e-9
	for _, seq := range train {
		for t := 1; t < len(seq); t++ {
			if d := l1(seq[t], seq[t-1]); d > hi {
				hi = d
			}
		}
	}
	hi *= float64(len(train[0][0])) // headroom for multi-feature EWMA sums
	lo := 0.0
	rate := func(th float64) float64 {
		p, err := NewAdaptive(kind, th)
		if err != nil {
			panic(err) // kind was validated by the first NewAdaptive call
		}
		rng := rand.New(rand.NewSource(1)) // policies here are deterministic anyway
		var collected, total int
		for _, seq := range train {
			collected += len(p.Sample(seq, rng))
			total += len(seq)
		}
		return float64(collected) / float64(total)
	}
	if _, err := NewAdaptive(kind, 0); err != nil {
		return FitResult{}, err
	}
	// Rate is monotone non-increasing in the threshold: rate(0) is the
	// maximum, rate(hi) the minimum. Clamp unreachable targets.
	if rate(hi) >= targetRate {
		return FitResult{Threshold: hi, AchievedRate: rate(hi)}, nil
	}
	if rate(lo) <= targetRate {
		return FitResult{Threshold: lo, AchievedRate: rate(lo)}, nil
	}
	for i := 0; i < 48; i++ {
		mid := (lo + hi) / 2
		if rate(mid) > targetRate {
			lo = mid
		} else {
			hi = mid
		}
	}
	th := (lo + hi) / 2
	return FitResult{Threshold: th, AchievedRate: rate(th)}, nil
}

// FitGrid fits thresholds for the paper's eight budgets (rates 0.3 to 1.0)
// and returns them keyed by rate (rounded to one decimal).
func FitGrid(kind AdaptiveKind, train [][][]float64) (map[float64]FitResult, error) {
	out := make(map[float64]FitResult, 8)
	for r := 3; r <= 10; r++ {
		rate := float64(r) / 10
		res, err := Fit(kind, train, rate)
		if err != nil {
			return nil, err
		}
		out[math.Round(rate*10)/10] = res
	}
	return out, nil
}

// Sequences extracts the raw value matrices from labeled sequences, the
// form Fit consumes.
func Sequences(values ...[][]float64) [][][]float64 { return values }
