// Package reconstruct implements the server side of the subsampling
// pipeline: rebuilding a full T-step sequence from the subset of collected
// measurements by linear interpolation (§5.1), and the error metrics of the
// evaluation — mean absolute error (Tables 4, 7, 10) and deviation-weighted
// MAE (Table 5).
package reconstruct

import (
	"fmt"

	"repro/internal/stats"
)

// Linear rebuilds a full sequence of length T from measurements at the given
// indices. Values between collected points are linearly interpolated;
// values before the first (after the last) collected point hold the first
// (last) collected value. An empty batch reconstructs to all zeros.
func Linear(indices []int, values [][]float64, T, d int) ([][]float64, error) {
	if len(indices) != len(values) {
		return nil, fmt.Errorf("reconstruct: %d indices but %d value rows", len(indices), len(values))
	}
	out := make([][]float64, T)
	for t := range out {
		out[t] = make([]float64, d)
	}
	if len(indices) == 0 {
		return out, nil
	}
	prev := -1
	for i, idx := range indices {
		if idx < 0 || idx >= T || idx <= prev {
			return nil, fmt.Errorf("reconstruct: bad index %d at position %d", idx, i)
		}
		prev = idx
		if len(values[i]) != d {
			return nil, fmt.Errorf("reconstruct: row %d has %d features, want %d", i, len(values[i]), d)
		}
	}
	// Head: hold the first collected value.
	for t := 0; t < indices[0]; t++ {
		copy(out[t], values[0])
	}
	// Interior: linear interpolation between consecutive collected points.
	for i := 0; i+1 < len(indices); i++ {
		lo, hi := indices[i], indices[i+1]
		copy(out[lo], values[i])
		span := float64(hi - lo)
		for t := lo + 1; t < hi; t++ {
			alpha := float64(t-lo) / span
			for f := 0; f < d; f++ {
				out[t][f] = values[i][f]*(1-alpha) + values[i+1][f]*alpha
			}
		}
	}
	// Tail: hold the last collected value.
	last := indices[len(indices)-1]
	for t := last; t < T; t++ {
		copy(out[t], values[len(values)-1])
	}
	return out, nil
}

// MAE returns the mean absolute error between a reconstruction and the true
// sequence, averaged over every time step and feature.
func MAE(recon, truth [][]float64) (float64, error) {
	if len(recon) != len(truth) {
		return 0, fmt.Errorf("reconstruct: MAE length mismatch %d vs %d", len(recon), len(truth))
	}
	var sum float64
	var n int
	for t := range truth {
		if len(recon[t]) != len(truth[t]) {
			return 0, fmt.Errorf("reconstruct: MAE width mismatch at step %d", t)
		}
		for f := range truth[t] {
			d := recon[t][f] - truth[t][f]
			if d < 0 {
				d = -d
			}
			sum += d
			n++
		}
	}
	if n == 0 {
		return 0, nil
	}
	return sum / float64(n), nil
}

// SequenceStdDev returns the population standard deviation of all values in
// a sequence, the per-sequence weight of Table 5's metric.
func SequenceStdDev(seq [][]float64) float64 {
	var flat []float64
	for _, row := range seq {
		flat = append(flat, row...)
	}
	return stats.PopStdDev(flat)
}

// Accumulator aggregates per-sequence errors into the evaluation's two
// metrics: plain mean MAE and deviation-weighted MAE.
type Accumulator struct {
	sumMAE      float64
	sumWeighted float64
	sumWeights  float64
	count       int
}

// Add records one sequence's MAE with the weight of its true-value standard
// deviation.
func (a *Accumulator) Add(mae, weight float64) {
	a.sumMAE += mae
	a.sumWeighted += mae * weight
	a.sumWeights += weight
	a.count++
}

// MAE returns the arithmetic mean of the recorded per-sequence MAEs.
func (a *Accumulator) MAE() float64 {
	if a.count == 0 {
		return 0
	}
	return a.sumMAE / float64(a.count)
}

// WeightedMAE returns the deviation-weighted mean MAE (Table 5): each
// sequence's error weighted by the standard deviation of its measurements.
// When every recorded weight is zero — all-flat sequences, whose std-dev
// weight is 0 — the weighted average is undefined; it falls back to the
// plain MAE rather than silently reporting a perfect 0.
func (a *Accumulator) WeightedMAE() float64 {
	if a.sumWeights == 0 {
		return a.MAE()
	}
	return a.sumWeighted / a.sumWeights
}

// Count returns the number of recorded sequences.
func (a *Accumulator) Count() int { return a.count }
