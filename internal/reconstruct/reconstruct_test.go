package reconstruct

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLinearInterpolatesBetweenPoints(t *testing.T) {
	recon, err := Linear([]int{0, 4}, [][]float64{{0}, {4}}, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	for tt := 0; tt < 5; tt++ {
		if recon[tt][0] != float64(tt) {
			t.Errorf("recon[%d] = %g, want %d", tt, recon[tt][0], tt)
		}
	}
}

func TestLinearHoldsEnds(t *testing.T) {
	recon, err := Linear([]int{2, 3}, [][]float64{{5, -1}, {7, 1}}, 6, 2)
	if err != nil {
		t.Fatal(err)
	}
	for tt := 0; tt < 2; tt++ {
		if recon[tt][0] != 5 || recon[tt][1] != -1 {
			t.Errorf("head not held at step %d: %v", tt, recon[tt])
		}
	}
	for tt := 3; tt < 6; tt++ {
		if recon[tt][0] != 7 || recon[tt][1] != 1 {
			t.Errorf("tail not held at step %d: %v", tt, recon[tt])
		}
	}
}

func TestLinearFullCollectionExact(t *testing.T) {
	// Collecting everything reconstructs exactly.
	truth := [][]float64{{1, 2}, {-3, 0.5}, {2.5, 2.5}}
	idx := []int{0, 1, 2}
	recon, err := Linear(idx, truth, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	mae, err := MAE(recon, truth)
	if err != nil {
		t.Fatal(err)
	}
	if mae != 0 {
		t.Errorf("full collection MAE = %g", mae)
	}
}

func TestLinearEmptyBatch(t *testing.T) {
	recon, err := Linear(nil, nil, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range recon {
		for _, v := range row {
			if v != 0 {
				t.Fatal("empty batch should reconstruct to zeros")
			}
		}
	}
}

func TestLinearErrors(t *testing.T) {
	if _, err := Linear([]int{0}, nil, 4, 1); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := Linear([]int{3, 1}, [][]float64{{1}, {2}}, 4, 1); err == nil {
		t.Error("unsorted indices accepted")
	}
	if _, err := Linear([]int{9}, [][]float64{{1}}, 4, 1); err == nil {
		t.Error("out-of-range index accepted")
	}
	if _, err := Linear([]int{0}, [][]float64{{1, 2}}, 4, 1); err == nil {
		t.Error("wrong feature count accepted")
	}
}

func TestMAEKnownValue(t *testing.T) {
	a := [][]float64{{0, 0}, {1, 1}}
	b := [][]float64{{1, 0}, {1, 3}}
	mae, err := MAE(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if mae != 0.75 { // (1+0+0+2)/4
		t.Errorf("MAE = %g, want 0.75", mae)
	}
}

func TestMAEMismatch(t *testing.T) {
	if _, err := MAE([][]float64{{1}}, [][]float64{{1}, {2}}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := MAE([][]float64{{1}}, [][]float64{{1, 2}}); err == nil {
		t.Error("width mismatch accepted")
	}
}

// TestMoreSamplesNeverWorse: on any sequence, adding a collected point can
// only reduce (or keep) the interpolation MAE at the collected point itself.
func TestMoreSamplesLowerErrorOnAverage(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	T, d := 40, 2
	truth := make([][]float64, T)
	for tt := range truth {
		truth[tt] = []float64{math.Sin(0.4 * float64(tt)), rng.NormFloat64()}
	}
	maeAt := func(k int) float64 {
		idx := make([]int, 0, k)
		step := T / k
		for i := 0; i < k; i++ {
			idx = append(idx, i*step)
		}
		vals := make([][]float64, len(idx))
		for i, ix := range idx {
			vals[i] = truth[ix]
		}
		recon, err := Linear(idx, vals, T, d)
		if err != nil {
			t.Fatal(err)
		}
		mae, err := MAE(recon, truth)
		if err != nil {
			t.Fatal(err)
		}
		return mae
	}
	if maeAt(20) >= maeAt(5) {
		t.Errorf("denser sampling not better: k=20 %g vs k=5 %g", maeAt(20), maeAt(5))
	}
}

func TestSequenceStdDev(t *testing.T) {
	if got := SequenceStdDev([][]float64{{2}, {4}, {4}, {4}, {5}, {5}, {7}, {9}}); math.Abs(got-2) > 1e-12 {
		t.Errorf("std = %g, want 2", got)
	}
	if got := SequenceStdDev(nil); got != 0 {
		t.Errorf("empty std = %g", got)
	}
}

func TestAccumulator(t *testing.T) {
	var acc Accumulator
	acc.Add(1.0, 2.0)
	acc.Add(3.0, 1.0)
	if got := acc.MAE(); got != 2 {
		t.Errorf("MAE = %g, want 2", got)
	}
	if got := acc.WeightedMAE(); math.Abs(got-5.0/3) > 1e-12 {
		t.Errorf("WeightedMAE = %g, want 5/3", got)
	}
	if acc.Count() != 2 {
		t.Errorf("Count = %d", acc.Count())
	}
	var empty Accumulator
	if empty.MAE() != 0 || empty.WeightedMAE() != 0 {
		t.Error("empty accumulator should return 0")
	}
}

// TestLinearPropertyBounded: interpolated values never exceed the range of
// the collected values (convexity of linear interpolation).
func TestLinearPropertyBounded(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		T := rng.Intn(30) + 2
		k := rng.Intn(T) + 1
		perm := rng.Perm(T)[:k]
		idx := append([]int(nil), perm...)
		for i := 1; i < len(idx); i++ {
			for j := i; j > 0 && idx[j] < idx[j-1]; j-- {
				idx[j], idx[j-1] = idx[j-1], idx[j]
			}
		}
		vals := make([][]float64, k)
		lo, hi := math.Inf(1), math.Inf(-1)
		for i := range vals {
			v := rng.NormFloat64() * 5
			vals[i] = []float64{v}
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		recon, err := Linear(idx, vals, T, 1)
		if err != nil {
			return false
		}
		for _, row := range recon {
			if row[0] < lo-1e-9 || row[0] > hi+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkLinearReconstruct(b *testing.B) {
	T, d := 206, 3
	idx := make([]int, 0, T/2)
	vals := make([][]float64, 0, T/2)
	for t := 0; t < T; t += 2 {
		idx = append(idx, t)
		vals = append(vals, []float64{1, 2, 3})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Linear(idx, vals, T, d); err != nil {
			b.Fatal(err)
		}
	}
}

// TestWeightedMAEFlatSequences covers the all-flat and mixed weight cases:
// a flat sequence has zero std-dev weight, and an accumulator holding only
// flat sequences used to report a silently perfect weighted MAE of 0.
func TestWeightedMAEFlatSequences(t *testing.T) {
	cases := []struct {
		name    string
		maes    []float64
		weights []float64
		want    float64
	}{
		// Every weight zero: fall back to the plain MAE instead of 0.
		{"all flat", []float64{0.5, 0.3}, []float64{0, 0}, 0.4},
		{"single flat", []float64{0.8}, []float64{0}, 0.8},
		// Mixed: zero-weight sequences drop out of the weighted average.
		{"mixed", []float64{0.5, 0.3}, []float64{0, 2}, 0.3},
		{"weighted", []float64{0.1, 0.4}, []float64{1, 3}, (0.1 + 1.2) / 4},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var acc Accumulator
			for i := range tc.maes {
				acc.Add(tc.maes[i], tc.weights[i])
			}
			if got := acc.WeightedMAE(); math.Abs(got-tc.want) > 1e-12 {
				t.Fatalf("WeightedMAE = %g, want %g", got, tc.want)
			}
		})
	}
	// Empty accumulator: both metrics are 0 by convention.
	var empty Accumulator
	if got := empty.WeightedMAE(); got != 0 {
		t.Errorf("empty WeightedMAE = %g, want 0", got)
	}
}

// TestLinearDegenerateShapes pins head/tail hold behavior for the smallest
// sequences the projections replay: T == 1 and a lone collected index inside
// a longer window. The projections depend on this holding steady.
func TestLinearDegenerateShapes(t *testing.T) {
	t.Run("T=1 single index", func(t *testing.T) {
		recon, err := Linear([]int{0}, [][]float64{{3.5, -1}}, 1, 2)
		if err != nil {
			t.Fatal(err)
		}
		if len(recon) != 1 || recon[0][0] != 3.5 || recon[0][1] != -1 {
			t.Fatalf("recon = %v", recon)
		}
	})
	t.Run("T=1 empty batch is zeros", func(t *testing.T) {
		recon, err := Linear(nil, nil, 1, 2)
		if err != nil {
			t.Fatal(err)
		}
		if len(recon) != 1 || recon[0][0] != 0 || recon[0][1] != 0 {
			t.Fatalf("recon = %v", recon)
		}
	})
	t.Run("lone interior index holds both ways", func(t *testing.T) {
		recon, err := Linear([]int{2}, [][]float64{{7}}, 5, 1)
		if err != nil {
			t.Fatal(err)
		}
		for step, row := range recon {
			if row[0] != 7 {
				t.Fatalf("step %d = %g, want held 7", step, row[0])
			}
		}
	})
	t.Run("lone final index back-fills the head", func(t *testing.T) {
		recon, err := Linear([]int{4}, [][]float64{{2}}, 5, 1)
		if err != nil {
			t.Fatal(err)
		}
		for step, row := range recon {
			if row[0] != 2 {
				t.Fatalf("step %d = %g, want held 2", step, row[0])
			}
		}
	})
	t.Run("T=1 out-of-range index rejected", func(t *testing.T) {
		if _, err := Linear([]int{1}, [][]float64{{1}}, 1, 1); err == nil {
			t.Fatal("want error for index 1 with T=1")
		}
	})
}
