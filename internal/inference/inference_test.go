package inference

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/policy"
	"repro/internal/reconstruct"
)

func TestExtractShape(t *testing.T) {
	seq := [][]float64{{1, 2}, {3, 4}, {5, 6}, {7, 8}}
	fv := Extract(seq)
	if len(fv) != 2*FeaturesPerChannel {
		t.Fatalf("feature length %d, want %d", len(fv), 2*FeaturesPerChannel)
	}
	if Extract(nil) != nil {
		t.Error("empty sequence should give nil features")
	}
}

func TestChannelFeaturesKnownValues(t *testing.T) {
	fv := channelFeatures([]float64{1, 2, 3, 4})
	if fv[0] != 2.5 {
		t.Errorf("mean = %g", fv[0])
	}
	if math.Abs(fv[1]-math.Sqrt(1.25)) > 1e-12 {
		t.Errorf("std = %g", fv[1])
	}
	if fv[2] != 1 || fv[3] != 4 {
		t.Errorf("min/max = %g/%g", fv[2], fv[3])
	}
	if fv[4] != 1 { // steps all 1
		t.Errorf("mean abs step = %g", fv[4])
	}
	if math.Abs(fv[5]-7.5) > 1e-12 { // (1+4+9+16)/4
		t.Errorf("energy = %g", fv[5])
	}
}

func TestZeroCrossings(t *testing.T) {
	// Alternating signal crosses its mean at every step.
	fv := channelFeatures([]float64{1, -1, 1, -1, 1, -1})
	if fv[6] != 5.0/6 {
		t.Errorf("zero crossings = %g, want 5/6", fv[6])
	}
}

func TestDominantBandPowerDetectsTone(t *testing.T) {
	n := 64
	calm := make([]float64, n)
	tone := make([]float64, n)
	for i := range tone {
		tone[i] = math.Sin(2 * math.Pi * 3 * float64(i) / float64(n))
	}
	if dominantBandPower(tone, 0) <= dominantBandPower(calm, 0) {
		t.Error("tone should have higher band power than silence")
	}
}

func TestClassifierSeparatesSyntheticEvents(t *testing.T) {
	d := dataset.MustLoad("epilepsy", dataset.Options{Seed: 5, MaxSequences: 80})
	rng := rand.New(rand.NewSource(1))
	train, test := d.Split(0.6, rng)
	var trSeq [][][]float64
	var trLab []int
	for _, s := range train.Sequences {
		trSeq = append(trSeq, s.Values)
		trLab = append(trLab, s.Label)
	}
	c, err := TrainClassifier(trSeq, trLab, d.Meta.NumLabels, 5)
	if err != nil {
		t.Fatal(err)
	}
	var teSeq [][][]float64
	var teLab []int
	for _, s := range test.Sequences {
		teSeq = append(teSeq, s.Values)
		teLab = append(teLab, s.Label)
	}
	acc := c.Accuracy(teSeq, teLab)
	if acc < 0.8 {
		t.Errorf("event-detection accuracy %.2f on raw data; classifier too weak", acc)
	}
}

// TestInferenceSurvivesAGEReconstruction is the utility-preservation claim:
// events detected from AGE-quantized, subsampled reconstructions should
// match raw-data detection closely.
func TestInferenceSurvivesAGEReconstruction(t *testing.T) {
	d := dataset.MustLoad("epilepsy", dataset.Options{Seed: 6, MaxSequences: 80})
	rng := rand.New(rand.NewSource(2))
	train, test := d.Split(0.6, rng)
	var trSeq [][][]float64
	var trLab []int
	for _, s := range train.Sequences {
		trSeq = append(trSeq, s.Values)
		trLab = append(trLab, s.Label)
	}
	c, err := TrainClassifier(trSeq, trLab, d.Meta.NumLabels, 5)
	if err != nil {
		t.Fatal(err)
	}
	// Reconstruct test sequences from a 70% Linear sample.
	var fit []([][]float64)
	for _, s := range train.Sequences {
		fit = append(fit, s.Values)
	}
	pf, err := policy.Fit(policy.KindLinear, fit, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	pol := policy.NewLinear(pf.Threshold)
	var rawAcc, reconAcc int
	for _, s := range test.Sequences {
		if c.Predict(s.Values) == s.Label {
			rawAcc++
		}
		idx := pol.Sample(s.Values, rng)
		vals := make([][]float64, len(idx))
		for i, t := range idx {
			vals[i] = s.Values[t]
		}
		recon, err := reconstruct.Linear(idx, vals, d.Meta.SeqLen, d.Meta.NumFeatures)
		if err != nil {
			t.Fatal(err)
		}
		if c.Predict(recon) == s.Label {
			reconAcc++
		}
	}
	n := len(test.Sequences)
	if float64(reconAcc) < 0.8*float64(rawAcc) {
		t.Errorf("reconstruction accuracy %d/%d far below raw %d/%d", reconAcc, n, rawAcc, n)
	}
}

func TestTrainClassifierErrors(t *testing.T) {
	if _, err := TrainClassifier(nil, nil, 2, 5); err == nil {
		t.Error("empty training set accepted")
	}
	seqs := [][][]float64{{{1}}, {{2}}}
	if _, err := TrainClassifier(seqs, []int{0}, 2, 5); err == nil {
		t.Error("label length mismatch accepted")
	}
	if _, err := TrainClassifier(seqs, []int{0, 9}, 2, 5); err == nil {
		t.Error("out-of-range label accepted")
	}
}

func TestCentroidFallbackWithFewSamples(t *testing.T) {
	// Two samples, k=5: must fall back to centroids and still separate.
	seqs := [][][]float64{
		{{0}, {0}, {0}, {0}},
		{{5}, {-5}, {5}, {-5}},
	}
	c, err := TrainClassifier(seqs, []int{0, 1}, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Predict([][]float64{{0.1}, {0}, {-0.1}, {0}}); got != 0 {
		t.Errorf("calm sequence classified as %d", got)
	}
	if got := c.Predict([][]float64{{4}, {-4}, {4}, {-4}}); got != 1 {
		t.Errorf("volatile sequence classified as %d", got)
	}
}

func BenchmarkExtract(b *testing.B) {
	seq := make([][]float64, 206)
	for t := range seq {
		seq[t] = []float64{math.Sin(float64(t)), math.Cos(float64(t)), 0.5}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Extract(seq)
	}
}
