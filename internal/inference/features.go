// Package inference implements the server-side event-detection pipeline of
// the paper's system model (§2.1): the server reconstructs each batch into a
// full sequence and classifies the event ("running", "seizure", ...) from
// it. The paper measures reconstruction error as its proxy for utility; this
// package closes the loop by measuring what actually matters downstream —
// whether events detected from AGE-encoded reconstructions match those
// detected from raw data.
//
// The classifier is deliberately classical and dependency-free: per-feature
// time and frequency statistics feed a z-scored nearest-centroid / k-NN
// classifier, the standard strong baseline for windowed human-activity
// recognition.
package inference

import (
	"math"
)

// FeaturesPerChannel is the number of statistics extracted per sensor
// channel.
const FeaturesPerChannel = 8

// Extract summarizes a T x d sequence into a fixed-length feature vector of
// d * FeaturesPerChannel values: mean, standard deviation, min, max, mean
// absolute step, signal energy, zero crossings, and the dominant low-band
// spectral power.
func Extract(seq [][]float64) []float64 {
	if len(seq) == 0 {
		return nil
	}
	d := len(seq[0])
	out := make([]float64, 0, d*FeaturesPerChannel)
	channel := make([]float64, len(seq))
	for f := 0; f < d; f++ {
		for t := range seq {
			channel[t] = seq[t][f]
		}
		out = append(out, channelFeatures(channel)...)
	}
	return out
}

// channelFeatures computes the eight per-channel statistics.
func channelFeatures(x []float64) []float64 {
	n := float64(len(x))
	var mean float64
	mn, mx := x[0], x[0]
	for _, v := range x {
		mean += v
		if v < mn {
			mn = v
		}
		if v > mx {
			mx = v
		}
	}
	mean /= n
	var variance, energy float64
	for _, v := range x {
		dv := v - mean
		variance += dv * dv
		energy += v * v
	}
	variance /= n
	var absStep float64
	zeroCross := 0.0
	for t := 1; t < len(x); t++ {
		absStep += math.Abs(x[t] - x[t-1])
		if (x[t]-mean)*(x[t-1]-mean) < 0 {
			zeroCross++
		}
	}
	if len(x) > 1 {
		absStep /= n - 1
	}
	return []float64{
		mean,
		math.Sqrt(variance),
		mn,
		mx,
		absStep,
		energy / n,
		zeroCross / n,
		dominantBandPower(x, mean),
	}
}

// dominantBandPower returns the largest Goertzel power among a handful of
// low-frequency bins (1..8 cycles per window), normalized by length. Gait
// and tremor frequencies live here, and the Goertzel recurrence needs no
// FFT machinery.
func dominantBandPower(x []float64, mean float64) float64 {
	n := len(x)
	if n < 4 {
		return 0
	}
	best := 0.0
	for bin := 1; bin <= 8; bin++ {
		w := 2 * math.Pi * float64(bin) / float64(n)
		c := 2 * math.Cos(w)
		var s0, s1, s2 float64
		for _, v := range x {
			s0 = v - mean + c*s1 - s2
			s2, s1 = s1, s0
		}
		power := s1*s1 + s2*s2 - c*s1*s2
		if power > best {
			best = power
		}
	}
	return best / float64(n*n)
}
