package inference

import (
	"fmt"
	"math"
	"sort"
)

// Classifier predicts event labels from feature vectors. It combines
// z-scored k-nearest-neighbors with a nearest-centroid fallback (used when
// k exceeds the stored sample count).
type Classifier struct {
	k          int
	numClasses int
	mean, std  []float64   // feature scaling
	samples    [][]float64 // scaled training features
	labels     []int
	centroids  [][]float64 // scaled per-class centroids
}

// TrainClassifier fits a classifier on labeled sequences. k is the
// neighborhood size (0 means the default of 5).
func TrainClassifier(seqs [][][]float64, labels []int, numClasses, k int) (*Classifier, error) {
	if len(seqs) == 0 || len(seqs) != len(labels) {
		return nil, fmt.Errorf("inference: bad training set (%d sequences, %d labels)", len(seqs), len(labels))
	}
	if k <= 0 {
		k = 5
	}
	features := make([][]float64, len(seqs))
	for i, s := range seqs {
		features[i] = Extract(s)
	}
	nf := len(features[0])
	c := &Classifier{k: k, numClasses: numClasses, mean: make([]float64, nf), std: make([]float64, nf)}
	for _, fv := range features {
		if len(fv) != nf {
			return nil, fmt.Errorf("inference: inconsistent feature lengths")
		}
		for j, v := range fv {
			c.mean[j] += v
		}
	}
	n := float64(len(features))
	for j := range c.mean {
		c.mean[j] /= n
	}
	for _, fv := range features {
		for j, v := range fv {
			d := v - c.mean[j]
			c.std[j] += d * d
		}
	}
	for j := range c.std {
		c.std[j] = math.Sqrt(c.std[j] / n)
		if c.std[j] < 1e-9 {
			c.std[j] = 1
		}
	}
	counts := make([]float64, numClasses)
	c.centroids = make([][]float64, numClasses)
	for i := range c.centroids {
		c.centroids[i] = make([]float64, nf)
	}
	for i, fv := range features {
		scaled := c.scale(fv)
		c.samples = append(c.samples, scaled)
		c.labels = append(c.labels, labels[i])
		if labels[i] < 0 || labels[i] >= numClasses {
			return nil, fmt.Errorf("inference: label %d out of range", labels[i])
		}
		for j, v := range scaled {
			c.centroids[labels[i]][j] += v
		}
		counts[labels[i]]++
	}
	for l := range c.centroids {
		if counts[l] > 0 {
			for j := range c.centroids[l] {
				c.centroids[l][j] /= counts[l]
			}
		}
	}
	return c, nil
}

func (c *Classifier) scale(fv []float64) []float64 {
	out := make([]float64, len(fv))
	for j, v := range fv {
		out[j] = (v - c.mean[j]) / c.std[j]
	}
	return out
}

func sqDist(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// Predict classifies one sequence.
func (c *Classifier) Predict(seq [][]float64) int {
	fv := c.scale(Extract(seq))
	if len(c.samples) < c.k {
		// Too few samples for a meaningful neighborhood: nearest centroid.
		best, bestD := 0, math.Inf(1)
		for l, cen := range c.centroids {
			if d := sqDist(fv, cen); d < bestD {
				best, bestD = l, d
			}
		}
		return best
	}
	type nd struct {
		d float64
		l int
	}
	nds := make([]nd, len(c.samples))
	for i, s := range c.samples {
		nds[i] = nd{d: sqDist(fv, s), l: c.labels[i]}
	}
	sort.Slice(nds, func(i, j int) bool { return nds[i].d < nds[j].d })
	votes := make([]int, c.numClasses)
	for _, v := range nds[:c.k] {
		votes[v.l]++
	}
	best := 0
	for l := 1; l < c.numClasses; l++ {
		if votes[l] > votes[best] {
			best = l
		}
	}
	return best
}

// Accuracy returns the fraction of sequences classified correctly.
func (c *Classifier) Accuracy(seqs [][][]float64, labels []int) float64 {
	if len(seqs) == 0 {
		return 0
	}
	correct := 0
	for i, s := range seqs {
		if c.Predict(s) == labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(seqs))
}
