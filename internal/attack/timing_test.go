package attack

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/internal/stats"
)

func TestTimingTapRecordsGaps(t *testing.T) {
	clock := time.Unix(0, 0)
	tap := newTimingTapClock(func() time.Time { return clock })

	// Sensor 0: anchor, then 10ms gap (label 1), then 30ms gap (label 2).
	tap.Observe(0, 1)
	clock = clock.Add(10 * time.Millisecond)
	tap.Observe(0, 1)
	clock = clock.Add(30 * time.Millisecond)
	tap.Observe(0, 2)
	// Sensor 7 interleaves: its anchor is independent of sensor 0's clock.
	tap.Observe(7, 1)
	clock = clock.Add(5 * time.Millisecond)
	tap.Observe(7, 1)

	if got := tap.Frames(); got != 5 {
		t.Errorf("Frames() = %d, want 5", got)
	}
	gaps := tap.GapsByLabel()
	if want := []float64{10000, 5000}; len(gaps[1]) != 2 || gaps[1][0] != want[0] || gaps[1][1] != want[1] {
		t.Errorf("label 1 gaps = %v, want %v", gaps[1], want)
	}
	if len(gaps[2]) != 1 || gaps[2][0] != 30000 {
		t.Errorf("label 2 gaps = %v, want [30000]", gaps[2])
	}
	// The returned map is a copy.
	gaps[1][0] = -1
	if tap.GapsByLabel()[1][0] != 10000 {
		t.Error("GapsByLabel returned aliased storage")
	}
}

func TestTimingWindowFeatures(t *testing.T) {
	// Eight 10ms gaps and two near-zero "burst" gaps: mean 8.2ms, so the
	// burst threshold (mean/2 = 4.1ms) catches exactly the two short gaps.
	gaps := []float64{10000, 10000, 10000, 10000, 10000, 10000, 10000, 10000, 1000, 1000}
	f := TimingWindowFeatures(gaps)
	if len(f) != 6 {
		t.Fatalf("feature count = %d, want 6", len(f))
	}
	if math.Abs(f[0]-8200) > 1e-9 {
		t.Errorf("mean = %v, want 8200", f[0])
	}
	if f[4] != 2 {
		t.Errorf("burst count = %v, want 2", f[4])
	}
	// Rate: 10 frames over 82ms total span = ~121.95 frames/s.
	if math.Abs(f[5]-10/(82000/1e6)) > 1e-6 {
		t.Errorf("rate = %v, want %v", f[5], 10/(82000/1e6))
	}
	// Degenerate window of zero gaps: no span, rate reports 0, not +Inf.
	z := TimingWindowFeatures([]float64{0, 0, 0})
	if z[5] != 0 {
		t.Errorf("zero-span rate = %v, want 0", z[5])
	}
}

func TestBuildTimingSamplesDeterministic(t *testing.T) {
	gaps := map[int][]float64{
		0: {1000, 1100, 900, 1050},
		2: {5000, 5200, 4800, 5100},
	}
	a, err := BuildTimingSamples(gaps, 40, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildTimingSamples(gaps, 40, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 40 {
		t.Fatalf("sample count = %d, want 40", len(a))
	}
	for i := range a {
		if a[i].Label != b[i].Label {
			t.Fatalf("sample %d label differs across same-seed builds", i)
		}
		for j := range a[i].Features {
			if a[i].Features[j] != b[i].Features[j] {
				t.Fatalf("sample %d feature %d differs across same-seed builds", i, j)
			}
		}
	}
	counts := map[int]int{}
	for _, s := range a {
		counts[s.Label]++
	}
	if counts[0] != 20 || counts[2] != 20 {
		t.Errorf("proportional allocation = %v, want 20/20", counts)
	}
	if _, err := BuildTimingSamples(map[int][]float64{0: {}}, 4, rand.New(rand.NewSource(1))); err == nil {
		t.Error("empty label pool accepted")
	}
	if _, err := BuildTimingSamples(map[int][]float64{}, 4, rand.New(rand.NewSource(1))); err == nil {
		t.Error("empty gap map accepted")
	}
}

func TestQuantizeGapsSeparatesDistributions(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	leaky := map[int][]float64{0: nil, 1: nil}
	for i := 0; i < 400; i++ {
		leaky[0] = append(leaky[0], 1000+rng.Float64()*100)
		leaky[1] = append(leaky[1], 9000+rng.Float64()*100)
	}
	labels, bins, err := QuantizeGaps(leaky, 8)
	if err != nil {
		t.Fatal(err)
	}
	// With 8 quantile bins and 2 balanced labels, H(label)=1 bit and
	// H(bin)=3 bits, so even perfectly separable distributions top out at
	// NMI = 2·1/(1+3) = 0.5 under the symmetric normalization.
	if nmi := stats.NMI(labels, bins); nmi < 0.45 {
		t.Errorf("separable gap distributions scored NMI %v, want ~0.5", nmi)
	}

	// A paced link: every gap identical regardless of label.
	flat := map[int][]float64{0: nil, 1: nil}
	for i := 0; i < 400; i++ {
		flat[0] = append(flat[0], 5000)
		flat[1] = append(flat[1], 5000)
	}
	labels, bins, err = QuantizeGaps(flat, 8)
	if err != nil {
		t.Fatal(err)
	}
	if nmi := stats.NMI(labels, bins); nmi > 0.05 {
		t.Errorf("constant gaps scored NMI %v, want ~0", nmi)
	}

	if _, _, err := QuantizeGaps(leaky, 1); err == nil {
		t.Error("bins=1 accepted")
	}
	if _, _, err := QuantizeGaps(map[int][]float64{}, 4); err == nil {
		t.Error("empty gap map accepted")
	}
}

func TestTimingAttackEndToEndSynthetic(t *testing.T) {
	// The full pipeline on synthetic gaps: leaky timing is classified well
	// above the majority baseline, constant-rate timing is not.
	rng := rand.New(rand.NewSource(21))
	leaky := map[int][]float64{0: nil, 1: nil, 2: nil}
	for i := 0; i < 300; i++ {
		leaky[0] = append(leaky[0], 2000+rng.NormFloat64()*200)
		leaky[1] = append(leaky[1], 6000+rng.NormFloat64()*200)
		leaky[2] = append(leaky[2], 12000+rng.NormFloat64()*200)
	}
	samples, err := BuildTimingSamples(leaky, 300, rng)
	if err != nil {
		t.Fatal(err)
	}
	res, err := CrossValidate(samples, 3, 5, DefaultAdaBoostConfig(), rng)
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanAccuracy < res.Majority+0.3 {
		t.Errorf("leaky timing: accuracy %.3f vs majority %.3f — attack should win easily",
			res.MeanAccuracy, res.Majority)
	}

	paced := map[int][]float64{0: nil, 1: nil, 2: nil}
	for i := 0; i < 300; i++ {
		for l := 0; l < 3; l++ {
			paced[l] = append(paced[l], 5000+rng.NormFloat64()*20) // jitter ≪ interval
		}
	}
	samples, err = BuildTimingSamples(paced, 300, rng)
	if err != nil {
		t.Fatal(err)
	}
	res, err = CrossValidate(samples, 3, 5, DefaultAdaBoostConfig(), rng)
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanAccuracy > res.Majority+0.15 {
		t.Errorf("paced timing: accuracy %.3f vs majority %.3f — defense should flatten the channel",
			res.MeanAccuracy, res.Majority)
	}
}
