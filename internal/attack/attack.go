package attack

import (
	"fmt"
	"math/rand"

	"repro/internal/stats"
)

// This file assembles the end-to-end attack pipeline of §5.4: an adversary
// who intercepts encrypted batches, groups ten message sizes belonging to
// the same (unknown) event, summarizes them into four features — mean,
// median, standard deviation, IQR — and classifies the event with the
// AdaBoost ensemble, scored by stratified five-fold cross-validation.

// WindowSize is the number of same-event message sizes per attack sample
// (the paper uses ten).
const WindowSize = 10

// Sample is one attack observation: features of a window of message sizes
// plus the true event label (known to the attacker only at training time).
type Sample struct {
	Features []float64
	Label    int //age:secret
}

// WindowFeatures summarizes a window of observed message sizes into the
// attack's four features.
func WindowFeatures(sizes []int) []float64 {
	xs := make([]float64, len(sizes))
	for i, s := range sizes {
		xs[i] = float64(s)
	}
	return []float64{stats.Mean(xs), stats.Median(xs), stats.StdDev(xs), stats.IQR(xs)}
}

// BuildSamples draws numSamples attack samples from per-event observed
// message sizes. Events are drawn proportionally to how often they appear in
// sizesByLabel (mirroring the deployment event mix); each sample takes
// WindowSize sizes of that event with replacement.
func BuildSamples(sizesByLabel map[int][]int, numSamples int, rng *rand.Rand) ([]Sample, error) {
	type labelPool struct {
		label int
		sizes []int
	}
	var pools []labelPool
	total := 0
	maxLabel := 0
	for l := 0; l <= maxKey(sizesByLabel); l++ { // deterministic label order
		sizes, ok := sizesByLabel[l]
		if !ok {
			continue
		}
		if len(sizes) == 0 {
			return nil, fmt.Errorf("attack: label %d has no observed sizes", l)
		}
		pools = append(pools, labelPool{label: l, sizes: sizes})
		total += len(sizes)
		if l > maxLabel {
			maxLabel = l
		}
	}
	if total == 0 {
		return nil, fmt.Errorf("attack: no observed sizes")
	}
	samples := make([]Sample, 0, numSamples)
	// Proportional allocation with largest-remainder rounding.
	for pi, p := range pools {
		n := numSamples * len(p.sizes) / total
		if pi == len(pools)-1 {
			n = numSamples - len(samples)
		}
		for i := 0; i < n; i++ {
			window := make([]int, WindowSize)
			for j := range window {
				window[j] = p.sizes[rng.Intn(len(p.sizes))]
			}
			samples = append(samples, Sample{Features: WindowFeatures(window), Label: p.label})
		}
	}
	rng.Shuffle(len(samples), func(i, j int) { samples[i], samples[j] = samples[j], samples[i] })
	return samples, nil
}

func maxKey(m map[int][]int) int {
	max := 0
	for k := range m {
		if k > max {
			max = k
		}
	}
	return max
}

// MajorityBaseline returns the frequency of the most common label among the
// samples: the accuracy of an attacker who learned nothing, and the best
// achievable against a leak-free policy.
func MajorityBaseline(samples []Sample) float64 {
	if len(samples) == 0 {
		return 0
	}
	counts := map[int]int{}
	best := 0
	for _, s := range samples {
		counts[s.Label]++
		if counts[s.Label] > best {
			best = counts[s.Label]
		}
	}
	return float64(best) / float64(len(samples))
}

// CVResult reports a stratified k-fold cross-validation of the attack.
type CVResult struct {
	// FoldAccuracies holds each fold's test accuracy.
	FoldAccuracies []float64
	// MeanAccuracy averages the folds.
	MeanAccuracy float64
	// Majority is the most-frequent-label baseline on all samples.
	Majority float64
	// Confusion[i][j] counts test samples of true label i predicted as j,
	// summed over folds.
	Confusion [][]int
}

// CrossValidate runs stratified k-fold cross-validation of the AdaBoost
// attack over the samples.
func CrossValidate(samples []Sample, numClasses, k int, cfg AdaBoostConfig, rng *rand.Rand) (CVResult, error) {
	if k < 2 {
		return CVResult{}, fmt.Errorf("attack: need k >= 2 folds, got %d", k)
	}
	if len(samples) < k {
		return CVResult{}, fmt.Errorf("attack: %d samples cannot fill %d folds", len(samples), k)
	}
	if numClasses < 2 {
		return CVResult{}, fmt.Errorf("attack: need numClasses >= 2, got %d", numClasses)
	}
	// Stratify: deal each label's samples round-robin into folds.
	byLabel := map[int][]int{}
	for i, s := range samples {
		if s.Label < 0 || s.Label >= numClasses {
			return CVResult{}, fmt.Errorf("attack: sample %d has label %d outside [0, %d)", i, s.Label, numClasses)
		}
		byLabel[s.Label] = append(byLabel[s.Label], i)
	}
	// A classifier cross-validated on one class is vacuous (every fold is
	// single-class and accuracy is trivially 1), and a label rarer than k
	// leaves it absent from some training splits, silently skewing the folds.
	// Both are almost certainly caller bugs, so fail loudly.
	if len(byLabel) < 2 {
		return CVResult{}, fmt.Errorf("attack: samples contain %d distinct label(s); stratified CV needs at least 2", len(byLabel))
	}
	for l, idx := range byLabel {
		if len(idx) < k {
			return CVResult{}, fmt.Errorf("attack: label %d has %d sample(s), fewer than k=%d — some folds would miss the class", l, len(idx), k)
		}
	}
	folds := make([][]int, k)
	for l := 0; l <= maxKeySamples(byLabel); l++ {
		idx, ok := byLabel[l]
		if !ok {
			continue
		}
		rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		for i, si := range idx {
			folds[i%k] = append(folds[i%k], si)
		}
	}
	res := CVResult{
		Majority:  MajorityBaseline(samples),
		Confusion: make([][]int, numClasses),
	}
	for i := range res.Confusion {
		res.Confusion[i] = make([]int, numClasses)
	}
	for fi := 0; fi < k; fi++ {
		var trainX, testX [][]float64
		var trainY, testY []int
		for fj := 0; fj < k; fj++ {
			for _, si := range folds[fj] {
				if fj == fi {
					testX = append(testX, samples[si].Features)
					testY = append(testY, samples[si].Label)
				} else {
					trainX = append(trainX, samples[si].Features)
					trainY = append(trainY, samples[si].Label)
				}
			}
		}
		model, err := TrainAdaBoost(trainX, trainY, numClasses, cfg)
		if err != nil {
			return CVResult{}, err
		}
		correct := 0
		for i := range testX {
			pred := model.Predict(testX[i])
			res.Confusion[testY[i]][pred]++
			if pred == testY[i] {
				correct++
			}
		}
		if len(testX) > 0 {
			res.FoldAccuracies = append(res.FoldAccuracies, float64(correct)/float64(len(testX)))
		}
	}
	res.MeanAccuracy = stats.Mean(res.FoldAccuracies)
	return res, nil
}

func maxKeySamples(m map[int][]int) int {
	max := 0
	for k := range m {
		if k > max {
			max = k
		}
	}
	return max
}
