package attack

import (
	"fmt"
	"math"
)

// AdaBoost is a SAMME-boosted ensemble of depth-limited decision trees — the
// multi-class AdaBoost the paper's attacker uses with 50 trees (§5.4).
type AdaBoost struct {
	trees      []*Tree
	alphas     []float64
	numClasses int
}

// AdaBoostConfig controls the ensemble fit.
type AdaBoostConfig struct {
	// Rounds is the maximum number of boosted trees (the paper uses 50).
	Rounds int
	// MaxDepth limits each weak learner (scikit-learn's AdaBoost default
	// is a depth-1 stump; 2 separates the interleaved size distributions
	// slightly better and stays a weak learner).
	MaxDepth int
}

// DefaultAdaBoostConfig returns the paper's attack configuration.
func DefaultAdaBoostConfig() AdaBoostConfig { return AdaBoostConfig{Rounds: 50, MaxDepth: 2} }

// TrainAdaBoost fits the ensemble with the SAMME algorithm: each round fits
// a weighted tree, weighs it by alpha = ln((1-err)/err) + ln(K-1), and
// upweights the samples it misclassified. Boosting stops early if a learner
// is perfect or no better than chance.
func TrainAdaBoost(X [][]float64, y []int, numClasses int, cfg AdaBoostConfig) (*AdaBoost, error) {
	n := len(X)
	if n == 0 || len(y) != n {
		return nil, fmt.Errorf("attack: bad training set (%d samples, %d labels)", n, len(y))
	}
	if numClasses < 2 {
		return nil, fmt.Errorf("attack: need at least 2 classes, got %d", numClasses)
	}
	w := make([]float64, n)
	for i := range w {
		w[i] = 1 / float64(n)
	}
	model := &AdaBoost{numClasses: numClasses}
	for round := 0; round < cfg.Rounds; round++ {
		tree := TrainTree(X, y, w, numClasses, cfg.MaxDepth)
		var err float64
		miss := make([]bool, n)
		for i := range X {
			if tree.Predict(X[i]) != y[i] {
				miss[i] = true
				err += w[i]
			}
		}
		if err <= 1e-12 {
			// Perfect learner: it alone decides.
			model.trees = append(model.trees, tree)
			model.alphas = append(model.alphas, 10) // large finite vote
			break
		}
		// SAMME requires err < 1 - 1/K to make progress.
		if err >= 1-1/float64(numClasses) {
			break
		}
		alpha := math.Log((1-err)/err) + math.Log(float64(numClasses-1))
		model.trees = append(model.trees, tree)
		model.alphas = append(model.alphas, alpha)
		// Reweight and renormalize.
		var total float64
		for i := range w {
			if miss[i] {
				w[i] *= math.Exp(alpha)
			}
			total += w[i]
		}
		for i := range w {
			w[i] /= total
		}
	}
	if len(model.trees) == 0 {
		// Degenerate data: fall back to a single majority-vote tree.
		model.trees = append(model.trees, TrainTree(X, y, w, numClasses, 0))
		model.alphas = append(model.alphas, 1)
	}
	return model, nil
}

// Rounds returns the number of fitted trees.
func (m *AdaBoost) Rounds() int { return len(m.trees) }

// Predict returns the alpha-weighted plurality class.
func (m *AdaBoost) Predict(x []float64) int {
	votes := make([]float64, m.numClasses)
	for i, tree := range m.trees {
		votes[tree.Predict(x)] += m.alphas[i]
	}
	best := 0
	for c := 1; c < m.numClasses; c++ {
		if votes[c] > votes[best] {
			best = c
		}
	}
	return best
}

// Accuracy returns the fraction of samples the model classifies correctly.
func (m *AdaBoost) Accuracy(X [][]float64, y []int) float64 {
	if len(X) == 0 {
		return 0
	}
	correct := 0
	for i := range X {
		if m.Predict(X[i]) == y[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(X))
}
