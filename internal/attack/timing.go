package attack

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"repro/internal/stats"
)

// This file extends the §5.4 adversary to the *timing* side-channel of the
// live ingest link. AGE's fixed-size frames close the size channel, but a
// sensor that transmits whenever its adaptive policy has a batch ready still
// modulates inter-frame timing with the collection rate — a duty-cycled
// node spends time proportional to the samples it gathered before it can
// key the radio — so an eavesdropper can classify events from gaps alone
// (cf. the AoI-eavesdropper attack, arXiv 2306.08475). The machinery here
// mirrors the size attack: a passive tap records per-sensor inter-frame
// gaps, windows of same-event gaps are summarized into features, and the
// same AdaBoost ensemble classifies them.

// TimingWindowSize is the number of same-event inter-frame gaps per timing
// attack sample, matching the size attack's window of ten.
const TimingWindowSize = WindowSize

// TimingTap is a passive wire tap on an ingest path: Observe is called once
// per frame seen on the link (real or dummy — an eavesdropper cannot tell),
// and the tap accumulates the inter-frame gaps per sensor, grouped by the
// ground-truth event label the experiment attributes to the observation
// (known to the attacker at training time, exactly like the size attack's
// labels). The first observation of each sensor only anchors its clock; it
// yields no gap. Safe for concurrent use — fleet sensors stream in
// parallel.
//
// The tap stamps its own clock. That keeps wall-clock reads out of the
// deterministic experiment packages: timing attack results are
// statistically, not byte-for-byte, reproducible, and are asserted with
// margins rather than golden values.
type TimingTap struct {
	mu   sync.Mutex
	now  func() time.Time
	last map[int]time.Time
	gaps map[int][]float64 // label -> observed gaps in microseconds
	seen int
}

// NewTimingTap returns an empty tap.
func NewTimingTap() *TimingTap {
	return &TimingTap{now: time.Now, last: map[int]time.Time{}, gaps: map[int][]float64{}}
}

// newTimingTapClock is NewTimingTap with an injected clock, for tests.
func newTimingTapClock(now func() time.Time) *TimingTap {
	t := NewTimingTap()
	t.now = now
	return t
}

// Observe records one frame sighting on sensorID's link, attributed to
// label.
func (t *TimingTap) Observe(sensorID, label int) {
	ts := t.now()
	t.mu.Lock()
	defer t.mu.Unlock()
	t.seen++
	if prev, ok := t.last[sensorID]; ok {
		gap := float64(ts.Sub(prev).Nanoseconds()) / 1e3
		if gap < 0 {
			gap = 0
		}
		t.gaps[label] = append(t.gaps[label], gap)
	}
	t.last[sensorID] = ts
}

// Frames returns how many frame sightings the tap has recorded (including
// the per-sensor anchors that produced no gap).
func (t *TimingTap) Frames() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.seen
}

// GapsByLabel returns a copy of the observed inter-frame gaps (in
// microseconds) grouped by event label.
func (t *TimingTap) GapsByLabel() map[int][]float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[int][]float64, len(t.gaps))
	for l, g := range t.gaps {
		out[l] = append([]float64(nil), g...)
	}
	return out
}

// TimingWindowFeatures summarizes a window of inter-frame gaps (µs) into
// the timing attack's six features: the four moments the size attack uses
// (mean, median, standard deviation, IQR), a burst count (gaps shorter than
// half the window mean — back-to-back transmissions), and the windowed
// frame rate (frames per second implied by the window's total span).
func TimingWindowFeatures(gaps []float64) []float64 {
	mean := stats.Mean(gaps)
	bursts := 0.0
	total := 0.0
	for _, g := range gaps {
		if g < mean/2 {
			bursts++
		}
		total += g
	}
	rate := 0.0
	if total > 0 {
		rate = float64(len(gaps)) / (total / 1e6)
	}
	return []float64{mean, stats.Median(gaps), stats.StdDev(gaps), stats.IQR(gaps), bursts, rate}
}

// BuildTimingSamples draws numSamples timing attack observations from
// per-event gap pools, mirroring BuildSamples: events are drawn
// proportionally to their share of observed gaps, each sample windows
// TimingWindowSize same-event gaps with replacement, and the result is
// shuffled. Every present label must have at least one gap.
func BuildTimingSamples(gapsByLabel map[int][]float64, numSamples int, rng *rand.Rand) ([]Sample, error) {
	type labelPool struct {
		label int
		gaps  []float64
	}
	var pools []labelPool
	total := 0
	for l := 0; l <= maxKeyFloat(gapsByLabel); l++ { // deterministic label order
		gaps, ok := gapsByLabel[l]
		if !ok {
			continue
		}
		if len(gaps) == 0 {
			return nil, fmt.Errorf("attack: label %d has no observed gaps", l)
		}
		pools = append(pools, labelPool{label: l, gaps: gaps})
		total += len(gaps)
	}
	if total == 0 {
		return nil, fmt.Errorf("attack: no observed gaps")
	}
	samples := make([]Sample, 0, numSamples)
	for pi, p := range pools {
		n := numSamples * len(p.gaps) / total
		if pi == len(pools)-1 {
			n = numSamples - len(samples)
		}
		for i := 0; i < n; i++ {
			window := make([]float64, TimingWindowSize)
			for j := range window {
				window[j] = p.gaps[rng.Intn(len(p.gaps))]
			}
			samples = append(samples, Sample{Features: TimingWindowFeatures(window), Label: p.label})
		}
	}
	rng.Shuffle(len(samples), func(i, j int) { samples[i], samples[j] = samples[j], samples[i] })
	return samples, nil
}

func maxKeyFloat(m map[int][]float64) int {
	max := 0
	for k := range m {
		if k > max {
			max = k
		}
	}
	return max
}

// QuantizeGaps discretizes per-label gap observations into quantile bins
// over the pooled distribution and returns parallel label/bin slices, the
// shape stats.NMI and stats.PermutationTestNMI consume. Quantile (rather
// than uniform-width) bins keep every bin populated, so the NMI estimate is
// not dominated by empty cells. bins must be at least 2.
func QuantizeGaps(gapsByLabel map[int][]float64, bins int) (labels, binned []int, err error) {
	if bins < 2 {
		return nil, nil, fmt.Errorf("attack: need at least 2 bins, got %d", bins)
	}
	var pooled []float64
	for l := 0; l <= maxKeyFloat(gapsByLabel); l++ { // deterministic label order
		gaps, ok := gapsByLabel[l]
		if !ok {
			continue
		}
		for _, g := range gaps {
			labels = append(labels, l)
			pooled = append(pooled, g)
		}
	}
	if len(pooled) == 0 {
		return nil, nil, fmt.Errorf("attack: no observed gaps")
	}
	sorted := append([]float64(nil), pooled...)
	sort.Float64s(sorted)
	edges := make([]float64, bins-1)
	for i := range edges {
		q := float64(i+1) / float64(bins)
		edges[i] = sorted[int(q*float64(len(sorted)-1))]
	}
	binned = make([]int, len(pooled))
	for i, g := range pooled {
		b := sort.SearchFloat64s(edges, g)
		binned[i] = b
	}
	return labels, binned, nil
}
