package attack

import (
	"math"
	"math/rand"
	"strings"
	"testing"
)

// separableData builds two Gaussian blobs per class along feature 0.
func separableData(rng *rand.Rand, n, numClasses int, gap float64) ([][]float64, []int) {
	X := make([][]float64, n)
	y := make([]int, n)
	for i := range X {
		y[i] = i % numClasses
		X[i] = []float64{float64(y[i])*gap + rng.NormFloat64(), rng.NormFloat64()}
	}
	return X, y
}

func TestTreePerfectSplit(t *testing.T) {
	X := [][]float64{{0}, {1}, {10}, {11}}
	y := []int{0, 0, 1, 1}
	w := []float64{1, 1, 1, 1}
	tree := TrainTree(X, y, w, 2, 3)
	for i := range X {
		if tree.Predict(X[i]) != y[i] {
			t.Errorf("sample %d misclassified", i)
		}
	}
	if tree.Depth() != 1 {
		t.Errorf("depth = %d, want 1", tree.Depth())
	}
}

func TestTreeDepthLimit(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	X, y := separableData(rng, 200, 2, 0.5) // overlapping: wants depth
	w := make([]float64, len(X))
	for i := range w {
		w[i] = 1
	}
	tree := TrainTree(X, y, w, 2, 2)
	if tree.Depth() > 2 {
		t.Errorf("depth %d exceeds limit 2", tree.Depth())
	}
	// Depth-0 is a bare majority leaf.
	stump := TrainTree(X, y, w, 2, 0)
	if stump.Depth() != 0 {
		t.Errorf("depth-0 tree has depth %d", stump.Depth())
	}
}

func TestTreeRespectsWeights(t *testing.T) {
	// Two identical feature values with conflicting labels: the heavier
	// weight wins the leaf.
	X := [][]float64{{1}, {1}}
	y := []int{0, 1}
	tree := TrainTree(X, y, []float64{0.1, 10}, 2, 2)
	if tree.Predict([]float64{1}) != 1 {
		t.Error("weighted majority ignored")
	}
}

func TestTreePureLeafStopsEarly(t *testing.T) {
	X := [][]float64{{1}, {2}, {3}}
	y := []int{1, 1, 1}
	tree := TrainTree(X, y, []float64{1, 1, 1}, 2, 5)
	if tree.Depth() != 0 {
		t.Errorf("pure node split anyway: depth %d", tree.Depth())
	}
}

func TestAdaBoostOnSeparableData(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	X, y := separableData(rng, 600, 3, 6)
	model, err := TrainAdaBoost(X, y, 3, DefaultAdaBoostConfig())
	if err != nil {
		t.Fatal(err)
	}
	if acc := model.Accuracy(X, y); acc < 0.95 {
		t.Errorf("train accuracy %g on separable data", acc)
	}
}

func TestAdaBoostBeatsSingleStumpOnXOR(t *testing.T) {
	// XOR-ish pattern needs boosting: one stump cannot do better than 0.5.
	rng := rand.New(rand.NewSource(3))
	n := 400
	X := make([][]float64, n)
	y := make([]int, n)
	for i := range X {
		a, b := rng.Float64(), rng.Float64()
		X[i] = []float64{a, b}
		if (a > 0.5) != (b > 0.5) {
			y[i] = 1
		}
	}
	model, err := TrainAdaBoost(X, y, 2, AdaBoostConfig{Rounds: 50, MaxDepth: 2})
	if err != nil {
		t.Fatal(err)
	}
	if acc := model.Accuracy(X, y); acc < 0.8 {
		t.Errorf("boosted accuracy %g on XOR", acc)
	}
}

func TestAdaBoostDegenerateInputs(t *testing.T) {
	if _, err := TrainAdaBoost(nil, nil, 2, DefaultAdaBoostConfig()); err == nil {
		t.Error("empty training set accepted")
	}
	if _, err := TrainAdaBoost([][]float64{{1}}, []int{0}, 1, DefaultAdaBoostConfig()); err == nil {
		t.Error("single class accepted")
	}
	// Constant features: model falls back to majority.
	X := [][]float64{{1}, {1}, {1}, {1}}
	y := []int{0, 0, 0, 1}
	model, err := TrainAdaBoost(X, y, 2, DefaultAdaBoostConfig())
	if err != nil {
		t.Fatal(err)
	}
	if model.Predict([]float64{1}) != 0 {
		t.Error("majority fallback failed")
	}
}

func TestWindowFeatures(t *testing.T) {
	f := WindowFeatures([]int{100, 100, 100, 100})
	if f[0] != 100 || f[1] != 100 || f[2] != 0 || f[3] != 0 {
		t.Errorf("constant window features = %v", f)
	}
	if len(f) != 4 {
		t.Errorf("feature count = %d, want 4 (mean, median, std, IQR)", len(f))
	}
}

func TestBuildSamplesProportional(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	sizesByLabel := map[int][]int{
		0: make([]int, 25), // 25% of observations
		1: make([]int, 75), // 75%
	}
	for i := range sizesByLabel[0] {
		sizesByLabel[0][i] = 500
	}
	for i := range sizesByLabel[1] {
		sizesByLabel[1][i] = 900
	}
	samples, err := BuildSamples(sizesByLabel, 1000, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 1000 {
		t.Fatalf("got %d samples", len(samples))
	}
	var zero int
	for _, s := range samples {
		if s.Label == 0 {
			zero++
		}
	}
	if zero != 250 {
		t.Errorf("label 0 got %d samples, want 250 (proportional)", zero)
	}
}

func TestBuildSamplesErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	if _, err := BuildSamples(map[int][]int{}, 10, rng); err == nil {
		t.Error("empty size map accepted")
	}
	if _, err := BuildSamples(map[int][]int{0: {}}, 10, rng); err == nil {
		t.Error("label with no sizes accepted")
	}
}

func TestMajorityBaseline(t *testing.T) {
	samples := []Sample{{Label: 0}, {Label: 0}, {Label: 0}, {Label: 1}}
	if got := MajorityBaseline(samples); got != 0.75 {
		t.Errorf("majority = %g, want 0.75", got)
	}
	if got := MajorityBaseline(nil); got != 0 {
		t.Errorf("empty majority = %g", got)
	}
}

// TestAttackRecoversLeakyPolicy mirrors §5.4: if per-event size
// distributions are separated (a leaky adaptive policy), the attack should
// be near-perfect; if all sizes are identical (AGE), accuracy collapses to
// the majority baseline.
func TestAttackRecoversLeakyPolicy(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	leaky := map[int][]int{}
	for l := 0; l < 3; l++ {
		for i := 0; i < 120; i++ {
			leaky[l] = append(leaky[l], 400+l*200+rng.Intn(60))
		}
	}
	samples, err := BuildSamples(leaky, 600, rng)
	if err != nil {
		t.Fatal(err)
	}
	res, err := CrossValidate(samples, 3, 5, DefaultAdaBoostConfig(), rng)
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanAccuracy < 0.95 {
		t.Errorf("attack accuracy %g on leaky policy; want near-perfect", res.MeanAccuracy)
	}

	protected := map[int][]int{}
	for l := 0; l < 3; l++ {
		for i := 0; i < 120; i++ {
			protected[l] = append(protected[l], 512) // AGE: fixed length
		}
	}
	samples, err = BuildSamples(protected, 600, rng)
	if err != nil {
		t.Fatal(err)
	}
	res, err = CrossValidate(samples, 3, 5, DefaultAdaBoostConfig(), rng)
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanAccuracy > res.Majority+0.05 {
		t.Errorf("attack accuracy %g exceeds majority %g under fixed sizes", res.MeanAccuracy, res.Majority)
	}
}

func TestCrossValidateConfusionTotals(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	sizes := map[int][]int{0: {100, 110}, 1: {500, 510}}
	samples, err := BuildSamples(sizes, 200, rng)
	if err != nil {
		t.Fatal(err)
	}
	res, err := CrossValidate(samples, 2, 5, DefaultAdaBoostConfig(), rng)
	if err != nil {
		t.Fatal(err)
	}
	var total int
	for _, row := range res.Confusion {
		for _, c := range row {
			total += c
		}
	}
	if total != len(samples) {
		t.Errorf("confusion covers %d, want %d", total, len(samples))
	}
	if len(res.FoldAccuracies) != 5 {
		t.Errorf("%d folds reported", len(res.FoldAccuracies))
	}
}

func TestCrossValidateErrors(t *testing.T) {
	// twoClass builds n valid samples alternating between labels 0 and 1.
	twoClass := func(n int) []Sample {
		s := make([]Sample, n)
		for i := range s {
			s[i] = Sample{Features: []float64{float64(i)}, Label: i % 2}
		}
		return s
	}
	cases := []struct {
		name       string
		samples    []Sample
		numClasses int
		k          int
		wantErr    string
	}{
		{"empty samples", nil, 2, 5, "cannot fill"},
		{"k below 2", twoClass(10), 2, 1, "need k >= 2"},
		{"k exceeds sample count", twoClass(3), 2, 5, "cannot fill 5 folds"},
		{"numClasses below 2", twoClass(10), 1, 5, "numClasses >= 2"},
		{"single-class samples", []Sample{
			{Features: []float64{1}, Label: 0}, {Features: []float64{2}, Label: 0},
			{Features: []float64{3}, Label: 0}, {Features: []float64{4}, Label: 0},
		}, 2, 2, "distinct label"},
		{"negative label", append(twoClass(10), Sample{Features: []float64{9}, Label: -1}), 2, 5, "outside [0, 2)"},
		{"label beyond numClasses", append(twoClass(10), Sample{Features: []float64{9}, Label: 2}), 2, 5, "outside [0, 2)"},
		{"label rarer than k", append(twoClass(10), Sample{Features: []float64{9}, Label: 2}), 3, 5, "fewer than k=5"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(8))
			_, err := CrossValidate(tc.samples, tc.numClasses, tc.k, DefaultAdaBoostConfig(), rng)
			if err == nil {
				t.Fatal("invalid input accepted")
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

func TestSeizureScenario(t *testing.T) {
	// The Figure 7 shape: seizure (25%) vs other (75%), fully separated
	// sizes -> 100% accuracy; fixed sizes -> all predictions collapse to
	// the majority event and seizure recall is 0.
	rng := rand.New(rand.NewSource(9))
	leaky := map[int][]int{}
	for i := 0; i < 50; i++ {
		leaky[0] = append(leaky[0], 870+rng.Intn(100)) // seizure
	}
	for i := 0; i < 150; i++ {
		leaky[1] = append(leaky[1], 560+rng.Intn(60)) // other
	}
	samples, _ := BuildSamples(leaky, 400, rng)
	res, err := CrossValidate(samples, 2, 5, DefaultAdaBoostConfig(), rng)
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanAccuracy < 0.99 {
		t.Errorf("seizure attack accuracy = %g, want ~1.0", res.MeanAccuracy)
	}
	if res.Confusion[0][1] != 0 || res.Confusion[1][0] != 0 {
		t.Errorf("confusion not diagonal: %v", res.Confusion)
	}

	fixed := map[int][]int{0: nil, 1: nil}
	for i := 0; i < 50; i++ {
		fixed[0] = append(fixed[0], 512)
	}
	for i := 0; i < 150; i++ {
		fixed[1] = append(fixed[1], 512)
	}
	samples, _ = BuildSamples(fixed, 400, rng)
	res, err = CrossValidate(samples, 2, 5, DefaultAdaBoostConfig(), rng)
	if err != nil {
		t.Fatal(err)
	}
	if res.Confusion[0][0] != 0 {
		t.Errorf("seizure predictions survived fixed sizes: %v", res.Confusion)
	}
	if math.Abs(res.MeanAccuracy-res.Majority) > 1e-9 {
		t.Errorf("accuracy %g != majority %g under AGE", res.MeanAccuracy, res.Majority)
	}
}

func BenchmarkAdaBoostTrain(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	sizes := map[int][]int{}
	for l := 0; l < 4; l++ {
		for i := 0; i < 100; i++ {
			sizes[l] = append(sizes[l], 400+l*150+rng.Intn(80))
		}
	}
	samples, _ := BuildSamples(sizes, 800, rng)
	X := make([][]float64, len(samples))
	y := make([]int, len(samples))
	for i, s := range samples {
		X[i], y[i] = s.Features, s.Label
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := TrainAdaBoost(X, y, 4, DefaultAdaBoostConfig()); err != nil {
			b.Fatal(err)
		}
	}
}
