// Package attack implements the paper's practical adversary (§5.4): an
// ensemble of depth-limited decision trees fit with AdaBoost (SAMME) on
// features of observed encrypted message sizes, evaluated with stratified
// five-fold cross-validation. A policy with no leakage forces this attacker
// down to predicting the most frequent event.
package attack

import (
	"math"
	"sort"
)

// treeNode is one node of a weighted CART decision tree.
type treeNode struct {
	// Leaf fields.
	leaf  bool
	class int
	// Split fields.
	feature   int
	threshold float64
	left      *treeNode // feature value <= threshold
	right     *treeNode
}

// Tree is a depth-limited decision tree trained with sample weights.
type Tree struct {
	root       *treeNode
	numClasses int
}

// TrainTree fits a CART tree of at most maxDepth levels minimizing weighted
// Gini impurity. X is row-major samples, y the class labels, w the sample
// weights (need not be normalized).
func TrainTree(X [][]float64, y []int, w []float64, numClasses, maxDepth int) *Tree {
	idx := make([]int, len(X))
	for i := range idx {
		idx[i] = i
	}
	t := &Tree{numClasses: numClasses}
	t.root = t.build(X, y, w, idx, maxDepth)
	return t
}

// build recursively grows the tree over the samples in idx.
func (t *Tree) build(X [][]float64, y []int, w []float64, idx []int, depth int) *treeNode {
	major, pure := weightedMajority(y, w, idx, t.numClasses)
	if depth == 0 || pure || len(idx) < 2 {
		return &treeNode{leaf: true, class: major}
	}
	feature, threshold, ok := bestSplit(X, y, w, idx, t.numClasses)
	if !ok {
		return &treeNode{leaf: true, class: major}
	}
	var left, right []int
	for _, i := range idx {
		if X[i][feature] <= threshold {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	if len(left) == 0 || len(right) == 0 {
		return &treeNode{leaf: true, class: major}
	}
	return &treeNode{
		feature:   feature,
		threshold: threshold,
		left:      t.build(X, y, w, left, depth-1),
		right:     t.build(X, y, w, right, depth-1),
	}
}

// weightedMajority returns the weight-heaviest class among idx and whether
// the set is pure.
func weightedMajority(y []int, w []float64, idx []int, numClasses int) (int, bool) {
	counts := make([]float64, numClasses)
	first := -1
	pure := true
	for _, i := range idx {
		counts[y[i]] += w[i]
		if first == -1 {
			first = y[i]
		} else if y[i] != first {
			pure = false
		}
	}
	best := 0
	for c := 1; c < numClasses; c++ {
		if counts[c] > counts[best] {
			best = c
		}
	}
	return best, pure
}

// bestSplit scans every feature for the weighted-Gini-optimal threshold.
func bestSplit(X [][]float64, y []int, w []float64, idx []int, numClasses int) (feature int, threshold float64, ok bool) {
	if len(idx) == 0 {
		return 0, 0, false
	}
	bestGain := 1e-12
	parent := giniOf(y, w, idx, numClasses)
	total := 0.0
	for _, i := range idx {
		total += w[i]
	}
	nf := len(X[idx[0]])
	order := make([]int, len(idx))
	for f := 0; f < nf; f++ {
		copy(order, idx)
		sort.Slice(order, func(a, b int) bool { return X[order[a]][f] < X[order[b]][f] })
		// Incremental class-weight tallies for the left partition.
		leftCounts := make([]float64, numClasses)
		rightCounts := make([]float64, numClasses)
		for _, i := range order {
			rightCounts[y[i]] += w[i]
		}
		var leftW float64
		for pos := 0; pos < len(order)-1; pos++ {
			i := order[pos]
			leftCounts[y[i]] += w[i]
			rightCounts[y[i]] -= w[i]
			leftW += w[i]
			// Only split between distinct feature values.
			if X[order[pos+1]][f] <= X[i][f] {
				continue
			}
			rightW := total - leftW
			gain := parent - (leftW*giniFromCounts(leftCounts, leftW)+
				rightW*giniFromCounts(rightCounts, rightW))/total
			if gain > bestGain {
				bestGain = gain
				feature = f
				threshold = (X[i][f] + X[order[pos+1]][f]) / 2
				ok = true
			}
		}
	}
	return feature, threshold, ok
}

func giniOf(y []int, w []float64, idx []int, numClasses int) float64 {
	counts := make([]float64, numClasses)
	var total float64
	for _, i := range idx {
		counts[y[i]] += w[i]
		total += w[i]
	}
	return giniFromCounts(counts, total)
}

func giniFromCounts(counts []float64, total float64) float64 {
	if total <= 0 {
		return 0
	}
	g := 1.0
	for _, c := range counts {
		p := c / total
		g -= p * p
	}
	return g
}

// Predict returns the tree's class for a feature vector.
func (t *Tree) Predict(x []float64) int {
	n := t.root
	for !n.leaf {
		if x[n.feature] <= n.threshold {
			n = n.left
		} else {
			n = n.right
		}
	}
	return n.class
}

// Depth returns the tree's height (a single leaf has depth 0).
func (t *Tree) Depth() int { return depthOf(t.root) }

func depthOf(n *treeNode) int {
	if n == nil || n.leaf {
		return 0
	}
	l, r := depthOf(n.left), depthOf(n.right)
	return 1 + int(math.Max(float64(l), float64(r)))
}
