package cluster

import (
	"bytes"
	"context"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/ingest"
)

// frameBytes is the deterministic per-(sensor, index) frame payload the
// tests verify byte-exactly: content is a pure function of its coordinates,
// so re-delivery after a node kill is detectable as a harmless duplicate
// and any corruption or cross-wiring is a mismatch.
func frameBytes(sensorID, index int) []byte {
	return []byte(fmt.Sprintf("s%05d-f%05d-x%02x", sensorID, index, byte(sensorID*31+index*7)))
}

// recHandler is one node's recording ingest handler: every delivered frame
// is kept by (sensor, index) so tests can reconstruct streams and assert
// exactness across nodes.
type recHandler struct {
	node int

	mu     sync.Mutex
	opens  map[int][]int // sensor -> delivered values seen at Open
	frames map[int]map[int][]byte
	total  int
}

func newRecHandler(node, total int) *recHandler {
	return &recHandler{node: node, total: total, opens: map[int][]int{}, frames: map[int]map[int][]byte{}}
}

func (h *recHandler) Open(sensorID, delivered int) (ingest.Session, error) {
	h.mu.Lock()
	h.opens[sensorID] = append(h.opens[sensorID], delivered)
	h.mu.Unlock()
	return &recSession{h: h, sensorID: sensorID}, nil
}

func (h *recHandler) Rejected(sensorID int, status ingest.Status) {}
func (h *recHandler) Unattributed(err error)                     {}

func (h *recHandler) sensorOpens(sensorID int) []int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]int(nil), h.opens[sensorID]...)
}

func (h *recHandler) sensors() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.frames)
}

type recSession struct {
	h        *recHandler
	sensorID int
}

func (s *recSession) Total() int { return s.h.total }

func (s *recSession) Frame(index int, msg []byte) error {
	h := s.h
	h.mu.Lock()
	defer h.mu.Unlock()
	m := h.frames[s.sensorID]
	if m == nil {
		m = map[int][]byte{}
		h.frames[s.sensorID] = m
	}
	m[index] = append([]byte(nil), msg...)
	return nil
}

func (s *recSession) Close(err error) {}

func seqIDs(n int) []int {
	ids := make([]int, n)
	for i := range ids {
		ids[i] = i
	}
	return ids
}

// verifyStreams reconstructs each listed sensor's stream from the union of
// all node handlers and asserts byte-exact, gap-free delivery.
func verifyStreams(t *testing.T, handlers []*recHandler, sensorIDs []int, total int) {
	t.Helper()
	missing, mismatched := 0, 0
	for _, id := range sensorIDs {
		got := map[int][]byte{}
		for _, h := range handlers {
			h.mu.Lock()
			for idx, msg := range h.frames[id] {
				if prev, ok := got[idx]; ok && !bytes.Equal(prev, msg) {
					mismatched++
				}
				got[idx] = msg
			}
			h.mu.Unlock()
		}
		for idx := 0; idx < total; idx++ {
			msg, ok := got[idx]
			if !ok {
				missing++
				continue
			}
			if !bytes.Equal(msg, frameBytes(id, idx)) {
				mismatched++
			}
		}
	}
	if missing != 0 || mismatched != 0 {
		t.Fatalf("reconstructed streams: %d missing, %d mismatched frames", missing, mismatched)
	}
}

// gateSource generates frameBytes frames, optionally blocking at gateAt
// until gate closes and optionally failing (transport-shaped) at failAt.
type gateSource struct {
	sensorID int
	total    int
	next     int
	gateAt   int // -1: never
	gate     <-chan struct{}
	failAt   int // -1: never
}

func (s *gateSource) Total() int { return s.total }

func (s *gateSource) Seek(resume int) error {
	s.next = resume
	return nil
}

func (s *gateSource) Next(ctx context.Context) ([]byte, error) {
	if s.gateAt >= 0 && s.next == s.gateAt {
		select {
		case <-s.gate:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	if s.failAt >= 0 && s.next == s.failAt {
		return nil, fmt.Errorf("induced link fault at frame %d", s.failAt)
	}
	msg := frameBytes(s.sensorID, s.next)
	s.next++
	return msg, nil
}

// testCluster builds and starts a cluster of n recording nodes.
func testCluster(t *testing.T, n, total int, clock func() time.Time) (*Cluster, []*recHandler) {
	t.Helper()
	handlers := make([]*recHandler, 0, n+4)
	var hmu sync.Mutex
	c, err := New(Config{
		Nodes: n,
		NewNode: func(i int) NodeSpec {
			h := newRecHandler(i, total)
			hmu.Lock()
			handlers = append(handlers, h)
			hmu.Unlock()
			return NodeSpec{Server: ingest.ServerConfig{Handler: h}}
		},
		Clock: clock,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c, handlers
}

func clientCfg(addr string, id int) ingest.ClientConfig {
	return ingest.ClientConfig{
		Addr:              addr,
		SensorID:          id,
		DialBackoff:       2 * time.Millisecond,
		ReconnectAttempts: 4,
	}
}

// runSensors streams each sensor's full assignment concurrently and
// returns the per-sensor stats; any run error fails the test.
func runSensors(t *testing.T, addr string, sensors, total int, src func(id int) *gateSource) []ingest.ClientStats {
	t.Helper()
	stats := make([]ingest.ClientStats, sensors)
	errs := make([]error, sensors)
	var wg sync.WaitGroup
	for id := 0; id < sensors; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			cl := ingest.NewClient(clientCfg(addr, id))
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			stats[id], errs[id] = cl.Run(ctx, src(id))
		}(id)
	}
	wg.Wait()
	for id, err := range errs {
		if err != nil {
			t.Fatalf("sensor %d: %v", id, err)
		}
	}
	return stats
}

func waitQuiet(t *testing.T, c *Cluster) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if c.Stats().ActiveConns == 0 {
			assertLoadCounters(t, c)
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("proxied connections never went quiet: %+v", c.Stats())
}

// assertLoadCounters recomputes the bounded-load counters from the locator
// map and fails when the incremental bookkeeping has drifted — the counters
// exist so routing never scans the map, which makes silent skew otherwise
// invisible until placement goes lopsided.
func assertLoadCounters(t *testing.T, c *Cluster) {
	t.Helper()
	c.mu.Lock()
	defer c.mu.Unlock()
	want := make([]int, len(c.nodes))
	for _, e := range c.locator {
		if !e.done {
			want[e.node]++
		}
	}
	for id := range want {
		if c.loads[id] != want[id] {
			t.Fatalf("node %d load counter = %d, locator holds %d not-done entries", id, c.loads[id], want[id])
		}
	}
}

func TestClusterRoutesAndCompletes(t *testing.T) {
	const sensors, total = 48, 6
	c, handlers := testCluster(t, 3, total, nil)
	addr := c.Addr().String()
	runSensors(t, addr, sensors, total, func(id int) *gateSource {
		return &gateSource{sensorID: id, total: total, gateAt: -1, failAt: -1}
	})
	verifyStreams(t, handlers, seqIDs(sensors), total)
	for _, h := range handlers {
		if h.sensors() == 0 {
			t.Errorf("node %d served no sensors; routing did not spread", h.node)
		}
	}
	st := c.Stats()
	if st.LocatorSize != sensors {
		t.Errorf("locator holds %d entries, want %d", st.LocatorSize, sensors)
	}
}

func TestClusterKillNodeResumesElsewhere(t *testing.T) {
	const sensors, total, gateAt = 24, 8, 4
	c, handlers := testCluster(t, 3, total, nil)
	addr := c.Addr().String()

	gate := make(chan struct{})
	var wg sync.WaitGroup
	stats := make([]ingest.ClientStats, sensors)
	errs := make([]error, sensors)
	for id := 0; id < sensors; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			cl := ingest.NewClient(clientCfg(addr, id))
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			stats[id], errs[id] = cl.Run(ctx, &gateSource{
				sensorID: id, total: total, gateAt: gateAt, gate: gate, failAt: -1,
			})
		}(id)
	}

	// Let every sensor reach the gate (half its frames delivered, the
	// connection parked mid-stream), then crash one node under them.
	waitForActive(t, c, sensors)
	if err := c.KillNode(1); err != nil {
		t.Fatal(err)
	}
	close(gate)
	wg.Wait()
	for id, err := range errs {
		if err != nil {
			t.Fatalf("sensor %d after node kill: %v", id, err)
		}
	}
	// Zero data loss: the union of streams across surviving nodes is
	// byte-exact and gap-free — killed-node sensors re-delivered their
	// prefix elsewhere (frame indices make the replay idempotent).
	verifyStreams(t, handlers, seqIDs(sensors), total)
	reconnected := 0
	for _, st := range stats {
		reconnected += st.Reconnects
	}
	if reconnected == 0 {
		t.Error("no sensor reconnected after a node kill; the kill hit nothing")
	}
}

// waitForActive blocks until n sensors are routed and carried by a live
// proxied connection — not merely accepted by the gateway, which happens
// before the hello is read and the sensor placed.
func waitForActive(t *testing.T, c *Cluster, n int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		st := c.Stats()
		routed := 0
		for _, ni := range st.Nodes {
			routed += ni.Active
		}
		if st.LocatorSize >= n && routed >= n {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("never reached %d routed conns: %+v", n, c.Stats())
}

func TestClusterDrainMigratesSessionExactly(t *testing.T) {
	const id, total, half = 7, 10, 5
	c, handlers := testCluster(t, 2, total, nil)
	addr := c.Addr().String()

	// Phase 1: deliver half the stream, then drop the link (transport
	// fault, no reconnect budget) so the session parks idle at half.
	cfg := clientCfg(addr, id)
	cfg.ReconnectAttempts = 0
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if _, err := ingest.NewClient(cfg).Run(ctx, &gateSource{
		sensorID: id, total: total, gateAt: -1, failAt: half,
	}); err == nil {
		t.Fatal("phase 1 should fail at the induced fault")
	}
	waitQuiet(t, c)

	c.mu.Lock()
	e := c.locator[id]
	c.mu.Unlock()
	if e == nil {
		t.Fatal("no locator entry after phase 1")
	}
	origin := e.node
	st, ok := c.nodes[origin].srv.PeekSession(id)
	if !ok || st.Delivered != half {
		t.Fatalf("origin node %d session = %+v, %v; want delivered %d", origin, st, ok, half)
	}

	// Phase 2: drain the origin. The parked session must migrate.
	if err := c.DrainNode(ctx, origin); err != nil {
		t.Fatal(err)
	}
	other := 1 - origin
	if st, ok := c.nodes[other].srv.PeekSession(id); !ok || st.Delivered != half {
		t.Fatalf("migrated session on node %d = %+v, %v; want delivered %d", other, st, ok, half)
	}

	// Phase 3: resume. The sensor must land on the surviving node and
	// continue from exactly half — no replayed frames, no gaps.
	if _, err := ingest.NewClient(clientCfg(addr, id)).Run(ctx, &gateSource{
		sensorID: id, total: total, gateAt: -1, failAt: -1,
	}); err != nil {
		t.Fatalf("phase 3 resume: %v", err)
	}
	opens := handlers[other].sensorOpens(id)
	if len(opens) != 1 || opens[0] != half {
		t.Fatalf("surviving node opens = %v, want exactly [%d]", opens, half)
	}
	handlers[other].mu.Lock()
	gotIdx := make([]int, 0, total)
	for idx := range handlers[other].frames[id] {
		gotIdx = append(gotIdx, idx)
	}
	handlers[other].mu.Unlock()
	if len(gotIdx) != total-half {
		t.Fatalf("surviving node holds %d frames, want only the resumed suffix %d", len(gotIdx), total-half)
	}
	verifyStreams(t, handlers, []int{id}, total) // union across both nodes is complete
}

func TestClusterDrainUnderLoadNoLeaks(t *testing.T) {
	before := runtime.NumGoroutine()
	func() {
		const sensors, total, gateAt = 16, 6, 3
		c, handlers := testCluster(t, 3, total, nil)
		addr := c.Addr().String()
		gate := make(chan struct{})
		var wg sync.WaitGroup
		errs := make([]error, sensors)
		for id := 0; id < sensors; id++ {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
				defer cancel()
				_, errs[id] = ingest.NewClient(clientCfg(addr, id)).Run(ctx, &gateSource{
					sensorID: id, total: total, gateAt: gateAt, gate: gate, failAt: -1,
				})
			}(id)
		}
		waitForActive(t, c, sensors)

		// Drain node 2 while its sessions are parked mid-stream: it leaves
		// the ring immediately, its in-flight sessions run to completion
		// once the gate opens, and nothing leaks.
		drainDone := make(chan error, 1)
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		go func() { drainDone <- c.DrainNode(ctx, 2) }()
		time.Sleep(10 * time.Millisecond) // let the drain sever the ring first
		close(gate)
		wg.Wait()
		if err := <-drainDone; err != nil {
			t.Fatalf("drain: %v", err)
		}
		for id, err := range errs {
			if err != nil {
				t.Fatalf("sensor %d during drain: %v", id, err)
			}
		}
		verifyStreams(t, handlers, seqIDs(sensors), total)
		if err := c.Drain(ctx); err != nil {
			t.Fatalf("cluster drain: %v", err)
		}
	}()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: %d before, %d after drain", before, runtime.NumGoroutine())
}

func TestClusterAddNodeRebalancesOnlyAffected(t *testing.T) {
	const idle, activeN, total, gateAt = 40, 8, 6, 3
	c, handlers := testCluster(t, 3, total, nil)
	addr := c.Addr().String()

	// Wave 1: idle sessions — completed streams parked in the locator.
	runSensors(t, addr, idle, total, func(id int) *gateSource {
		return &gateSource{sensorID: id, total: total, gateAt: -1, failAt: -1}
	})
	waitQuiet(t, c)
	c.mu.Lock()
	before := map[int]int{}
	for id, e := range c.locator {
		before[id] = e.node
	}
	c.mu.Unlock()

	// Wave 2: live sensors parked mid-stream while the node joins.
	gate := make(chan struct{})
	var wg sync.WaitGroup
	stats := make([]ingest.ClientStats, idle+activeN)
	errs := make([]error, idle+activeN)
	for id := idle; id < idle+activeN; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			stats[id], errs[id] = ingest.NewClient(clientCfg(addr, id)).Run(ctx, &gateSource{
				sensorID: id, total: total, gateAt: gateAt, gate: gate, failAt: -1,
			})
		}(id)
	}
	waitForActive(t, c, activeN)

	newID, err := c.AddNode()
	if err != nil {
		t.Fatal(err)
	}
	close(gate)
	wg.Wait()
	for id := idle; id < idle+activeN; id++ {
		if errs[id] != nil {
			t.Fatalf("live sensor %d across a join: %v", id, errs[id])
		}
		// The join must be invisible to live streams: no severed
		// connections, no forced redials.
		if stats[id].Reconnects != 0 {
			t.Errorf("live sensor %d reconnected %d times across a join", id, stats[id].Reconnects)
		}
	}
	verifyStreams(t, handlers, seqIDs(idle+activeN), total)

	// Idle sessions: exactly the ring-affected ones moved to the joined
	// node; every other mapping is untouched.
	c.mu.Lock()
	moved, kept := 0, 0
	for id := 0; id < idle; id++ {
		e := c.locator[id]
		if e == nil {
			c.mu.Unlock()
			t.Fatalf("idle sensor %d lost its locator entry on join", id)
		}
		primary, _ := c.ring.lookup(id)
		switch {
		case primary == newID && e.node == newID:
			moved++
		case primary != newID && e.node == before[id]:
			kept++
		default:
			c.mu.Unlock()
			t.Fatalf("sensor %d: ring primary %d, locator node %d (was %d) — moved without cause",
				id, primary, e.node, before[id])
		}
	}
	c.mu.Unlock()
	if moved == 0 {
		t.Error("no idle session moved to the joined node; rebalance did nothing")
	}
	t.Logf("join rebalance: %d moved, %d untouched", moved, kept)
}

// fakeClock is a settable shared clock for TTL tests: no sleeping.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (f *fakeClock) now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.t
}

func (f *fakeClock) advance(d time.Duration) {
	f.mu.Lock()
	f.t = f.t.Add(d)
	f.mu.Unlock()
}

// TestClusterEvictionAgreement is the regression for the locator/registry
// eviction split: a session evicted on node A must not survive a migration
// to node B — both tiers run on the shared clock, so the gateway re-admits
// the sensor from scratch instead of resurrecting expired state.
func TestClusterEvictionAgreement(t *testing.T) {
	const id, total = 3, 4
	clk := &fakeClock{t: time.Unix(1000, 0)}
	c, handlers := testCluster(t, 2, total, clk.now)
	addr := c.Addr().String()

	// Complete one stream; its done entry now sits on some node A.
	runSensors(t, addr, id+1, total, func(s int) *gateSource {
		return &gateSource{sensorID: s, total: total, gateAt: -1, failAt: -1}
	})
	waitQuiet(t, c)
	c.mu.Lock()
	e := c.locator[id]
	origin := e.node
	c.mu.Unlock()
	if _, ok := c.nodes[origin].srv.PeekSession(id); !ok {
		t.Fatal("no registry entry after completion")
	}

	// Cross the TTL on the shared clock: registry and locator now both
	// consider the session gone, with no wall time spent.
	clk.advance(defaultSessionTTL + time.Second)
	if _, ok := c.nodes[origin].srv.PeekSession(id); ok {
		t.Fatal("registry still serves an expired session")
	}
	// Force the migration path: point the ring away from the session's
	// node so the next hello would hand the (expired) state to node B.
	c.mu.Lock()
	c.ring.remove(origin)
	c.mu.Unlock()

	// The sensor returns. Migration must refuse the expired state and the
	// gateway must re-admit from scratch — delivered 0, stream replayed.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if _, err := ingest.NewClient(clientCfg(addr, id)).Run(ctx, &gateSource{
		sensorID: id, total: total, gateAt: -1, failAt: -1,
	}); err != nil {
		t.Fatalf("re-admission run: %v", err)
	}
	other := 1 - origin
	opens := handlers[other].sensorOpens(id)
	if len(opens) != 1 || opens[0] != 0 {
		t.Fatalf("node %d opens for sensor %d = %v, want a fresh [0] admission", other, id, opens)
	}
	c.mu.Lock()
	e = c.locator[id]
	c.mu.Unlock()
	if e == nil || e.node != other {
		t.Fatalf("locator after re-admission = %+v, want node %d", e, other)
	}
	verifyStreams(t, handlers, seqIDs(id+1), total)
}
