// The gateway proxies client conns to node conns: everything here touches
// the wire, so the whole file is transport scope for ctxdeadline and
// leaktaint (belt and braces with the package-level scoping in their
// default configs).
//
//age:transport
package cluster

import (
	"context"
	"errors"
	"fmt"
	"math"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ingest"
	"repro/internal/metrics"
	"repro/internal/staging"
)

// Gateway defaults, applied when the corresponding Config knob is zero.
const (
	defaultNodes      = 3
	defaultLoadFactor = 1.25
	defaultMaxConns   = 4096
	defaultIOTimeout  = 5 * time.Second
	// defaultSessionTTL mirrors the ingest server's registry default; the
	// cluster pushes one TTL into every node so the locator and the node
	// registries expire entries on the same schedule.
	defaultSessionTTL = time.Minute
	// spliceBufSize is the per-direction copy buffer. Sealed frames are
	// hundreds of bytes; 4 KiB keeps per-connection memory modest at the
	// gateway's connection bound.
	spliceBufSize = 4 << 10
)

// ErrClosed is returned for operations on a closed cluster.
var ErrClosed = errors.New("cluster: closed")

// CursorStore is the staging-tier migration hook: the gateway exports a
// sensor's staged cursor from the old node's store and imports it into the
// new node's, alongside the ingest registry state. *staging.Stage satisfies
// it; so does projection.Engine.
type CursorStore interface {
	ExportCursor(sensorID int) (staging.Cursor, bool)
	ImportCursor(c staging.Cursor)
}

// NodeSpec is one node's build recipe: its ingest server config plus the
// optional staging-tier store migrations should carry cursors between.
type NodeSpec struct {
	Server ingest.ServerConfig
	// Cursors, when set, receives/supplies staged cursors on migration.
	Cursors CursorStore
}

// Config configures a Cluster.
type Config struct {
	// Nodes is the initial node count (default 3).
	Nodes int
	// NewNode builds node i's spec. Required unless Node.Handler is set,
	// in which case every node shares the Node template. The cluster
	// overrides each spec's Clock and SessionTTL with its own so the
	// locator map and the node registries agree on eviction.
	NewNode func(i int) NodeSpec
	// Node is the template spec used when NewNode is nil.
	Node NodeSpec

	// Replicas is the virtual-node count per node on the hash ring
	// (default 128).
	Replicas int
	// LoadFactor is the bounded-load ceiling factor c: a node accepts new
	// sensors only while its assigned-session count is below
	// ceil(c * (total+1) / liveNodes) (default 1.25; <1 disables the
	// bound, falling back to plain consistent hashing).
	LoadFactor float64
	// MaxConns bounds concurrently proxied connections (default 4096);
	// beyond it new connections are shed with StatusOverloaded, the same
	// transient reject the nodes use, so clients back off and retry.
	MaxConns int
	// IOTimeout is the gateway's hello/reject deadline and the splice
	// loops' per-read deadline refresh interval (default 5s). A silent
	// proxied link is not killed by the gateway — the node's own read
	// deadline owns liveness — the refresh only bounds each blocking wait.
	IOTimeout time.Duration
	// SessionTTL is the idle lifetime of completed sessions, pushed into
	// every node registry and used by the locator map (default 1 minute;
	// negative keeps entries forever).
	SessionTTL time.Duration
	// Clock supplies the shared eviction clock (default time.Now),
	// injected into every node registry and the locator map.
	Clock func() time.Time
	// Metrics, when set, receives the cluster.* instrument family and is
	// shared with every node's ingest.* family (counters aggregate across
	// nodes).
	Metrics *metrics.Registry
}

func (cfg Config) withDefaults() Config {
	if cfg.Nodes <= 0 {
		cfg.Nodes = defaultNodes
	}
	if cfg.Replicas <= 0 {
		cfg.Replicas = defaultReplicas
	}
	if cfg.LoadFactor == 0 {
		cfg.LoadFactor = defaultLoadFactor
	}
	if cfg.MaxConns <= 0 {
		cfg.MaxConns = defaultMaxConns
	}
	if cfg.IOTimeout <= 0 {
		cfg.IOTimeout = defaultIOTimeout
	}
	if cfg.SessionTTL == 0 {
		cfg.SessionTTL = defaultSessionTTL
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	return cfg
}

// nodeState is a node's lifecycle position.
type nodeState int

const (
	nodePending nodeState = iota // built, not yet serving
	nodeLive
	nodeDraining
	nodeDead
)

func (s nodeState) String() string {
	switch s {
	case nodePending:
		return "pending"
	case nodeLive:
		return "live"
	case nodeDraining:
		return "draining"
	case nodeDead:
		return "dead"
	}
	return fmt.Sprintf("nodeState(%d)", int(s))
}

// node is one in-process ingest node under the gateway.
type node struct {
	id      int
	srv     *ingest.Server
	cursors CursorStore
	addr    string
	state   nodeState
	// serveDone closes when the node's Serve loop exits.
	serveDone chan struct{}
}

// locEntry is the locator map's per-sensor record: which node holds the
// sensor's session state, how many proxied connections currently carry it,
// and the eviction bookkeeping mirroring the node registry's.
type locEntry struct {
	node      int
	active    int
	done      bool
	idleSince time.Time
}

// clusterMetrics is the nil-safe cluster.* instrument family.
type clusterMetrics struct {
	routed     *metrics.Counter
	rejected   *metrics.Counter
	migrations *metrics.Counter
	dialFails  *metrics.Counter
	proxyBytes *metrics.Counter
	evicted    *metrics.Counter
}

func newClusterMetrics(reg *metrics.Registry) clusterMetrics {
	return clusterMetrics{
		routed:     reg.Counter("cluster.routed"),
		rejected:   reg.Counter("cluster.rejected"),
		migrations: reg.Counter("cluster.migrations"),
		dialFails:  reg.Counter("cluster.node_dial_failures"),
		proxyBytes: reg.Counter("cluster.proxy_bytes"),
		evicted:    reg.Counter("cluster.locator_evicted"),
	}
}

// Cluster is a gateway fronting N in-process ingest nodes. Sensors connect
// to the gateway address and speak the unmodified ingest protocol; the
// gateway reads each connection's hello, routes the sensor to a node by
// consistent hash (bounded-load variant) with stickiness to wherever the
// sensor's session state lives, and splices bytes until either side closes.
type Cluster struct {
	cfg Config
	m   clusterMetrics

	mu      sync.Mutex
	nodes   []*node
	ring    *ring
	locator map[int]*locEntry
	// loads[id] counts the not-yet-done locator entries assigned to node id,
	// maintained incrementally on every entry mutation so the bounded-load
	// ring lookup never scans the locator map — at fleet scale a per-route
	// O(locator) scan under mu collapses gateway throughput. atomicmix
	// rejects mutations outside the //age:counter helpers below.
	//age:counter
	loads     []int
	lastSweep time.Time
	ln        net.Listener
	started   bool
	closed    bool

	conns     map[net.Conn]struct{} // live gateway-side conns, severed on Close
	connSem   chan struct{}
	activeCnt atomic.Int64

	acceptWG sync.WaitGroup
	connWG   sync.WaitGroup
}

// New validates cfg and builds the cluster's initial nodes without starting
// anything; call Start.
func New(cfg Config) (*Cluster, error) {
	if cfg.NewNode == nil && cfg.Node.Server.Handler == nil {
		return nil, errors.New("cluster: Config needs NewNode or a Node template with a Handler")
	}
	cfg = cfg.withDefaults()
	c := &Cluster{
		cfg:     cfg,
		m:       newClusterMetrics(cfg.Metrics),
		ring:    newRing(cfg.Replicas),
		locator: map[int]*locEntry{},
		conns:   map[net.Conn]struct{}{},
		connSem: make(chan struct{}, cfg.MaxConns),
	}
	for i := 0; i < cfg.Nodes; i++ {
		if _, err := c.buildNode(); err != nil {
			return nil, err
		}
	}
	if reg := cfg.Metrics; reg != nil {
		reg.GaugeFunc("cluster.active_conns", c.activeCnt.Load)
		reg.GaugeFunc("cluster.locator_size", func() int64 {
			c.mu.Lock()
			defer c.mu.Unlock()
			return int64(len(c.locator))
		})
	}
	return c, nil
}

// buildNode constructs the next node (unstarted, off the ring).
//
//age:counter grows loads by one zeroed slot alongside nodes
func (c *Cluster) buildNode() (*node, error) {
	id := len(c.nodes)
	spec := c.cfg.Node
	if c.cfg.NewNode != nil {
		spec = c.cfg.NewNode(id)
	}
	// One clock and one TTL across the fleet: the locator map and every
	// node registry must agree on when an idle session dies, or a sweep on
	// one tier strands state on the other.
	spec.Server.Clock = c.cfg.Clock
	spec.Server.SessionTTL = c.cfg.SessionTTL
	if spec.Server.Metrics == nil {
		spec.Server.Metrics = c.cfg.Metrics
	}
	srv, err := ingest.NewServer(spec.Server)
	if err != nil {
		return nil, fmt.Errorf("cluster: node %d: %w", id, err)
	}
	n := &node{id: id, srv: srv, cursors: spec.Cursors, serveDone: make(chan struct{})}
	c.nodes = append(c.nodes, n)
	c.loads = append(c.loads, 0)
	return n, nil
}

// The locator mutation helpers below keep c.loads in lockstep with the map.
// Every entry create/drop/move/done-flip must go through them; a direct map
// write would silently skew the bounded-load accounting.

// putEntryLocked installs (or replaces) a sensor's locator entry.
//
//age:counter
func (c *Cluster) putEntryLocked(sensorID int, e *locEntry) {
	if old := c.locator[sensorID]; old != nil && !old.done {
		c.loads[old.node]--
	}
	c.locator[sensorID] = e
	if !e.done {
		c.loads[e.node]++
	}
}

// dropEntryLocked removes a sensor's locator entry if present.
//
//age:counter
func (c *Cluster) dropEntryLocked(sensorID int) {
	if e := c.locator[sensorID]; e != nil {
		if !e.done {
			c.loads[e.node]--
		}
		delete(c.locator, sensorID)
	}
}

// moveEntryLocked reassigns an entry to another node.
//
//age:counter
func (c *Cluster) moveEntryLocked(e *locEntry, to int) {
	if !e.done {
		c.loads[e.node]--
		c.loads[to]++
	}
	e.node = to
}

// markDoneLocked flips an entry's completion bit.
//
//age:counter
func (c *Cluster) markDoneLocked(e *locEntry, done bool) {
	if e.done == done {
		return
	}
	if done {
		c.loads[e.node]--
	} else {
		c.loads[e.node]++
	}
	e.done = done
}

// startNode binds and serves a built node, then puts it on the ring.
func (c *Cluster) startNode(n *node) error {
	if err := n.srv.Listen("127.0.0.1:0"); err != nil {
		return fmt.Errorf("cluster: node %d listen: %w", n.id, err)
	}
	n.addr = n.srv.Addr().String()
	go func() {
		n.srv.Serve()
		close(n.serveDone)
	}()
	c.mu.Lock()
	n.state = nodeLive
	c.ring.add(n.id)
	c.mu.Unlock()
	return nil
}

// Start binds the gateway to addr (e.g. "127.0.0.1:0"), starts every node,
// and begins accepting in the background. It returns once the gateway is
// reachable.
func (c *Cluster) Start(addr string) error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrClosed
	}
	if c.started {
		c.mu.Unlock()
		return errors.New("cluster: already started")
	}
	c.started = true
	nodes := append([]*node(nil), c.nodes...)
	c.mu.Unlock()

	for _, n := range nodes {
		if err := c.startNode(n); err != nil {
			return err
		}
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("cluster: gateway listen: %w", err)
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		ln.Close()
		return ErrClosed
	}
	c.ln = ln
	c.mu.Unlock()
	c.acceptWG.Add(1)
	go c.acceptLoop(ln)
	return nil
}

// Addr returns the gateway's bound address, or nil before Start.
func (c *Cluster) Addr() net.Addr {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.ln == nil {
		return nil
	}
	return c.ln.Addr()
}

// acceptLoop admits gateway connections under the MaxConns bound.
func (c *Cluster) acceptLoop(ln net.Listener) {
	defer c.acceptWG.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed (Close/Drain) or fatal; gateway stops
		}
		select {
		case c.connSem <- struct{}{}:
		default:
			// Past the connection bound: answer the hello with the same
			// transient overload reject the nodes use and move on.
			c.m.rejected.Inc()
			c.connWG.Add(1)
			go func() {
				defer c.connWG.Done()
				c.rejectConn(conn, ingest.StatusOverloaded)
			}()
			continue
		}
		if !c.track(conn) {
			<-c.connSem
			return
		}
		c.connWG.Add(1)
		go func() {
			defer c.connWG.Done()
			defer func() { <-c.connSem }()
			c.serveConn(conn)
		}()
	}
}

func (c *Cluster) track(conn net.Conn) bool {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		conn.Close()
		return false
	}
	c.conns[conn] = struct{}{}
	c.mu.Unlock()
	c.activeCnt.Add(1)
	return true
}

func (c *Cluster) untrack(conn net.Conn) {
	c.mu.Lock()
	delete(c.conns, conn)
	c.mu.Unlock()
	c.activeCnt.Add(-1)
}

// rejectConn consumes the hello (the reject ack is only valid after it)
// and answers with a typed reject. conn is not tracked.
func (c *Cluster) rejectConn(conn net.Conn, st ingest.Status) {
	defer conn.Close()
	timeout := c.cfg.IOTimeout
	if timeout > time.Second {
		timeout = time.Second
	}
	if _, err := ingest.ReadHello(conn, timeout); err != nil {
		return
	}
	ingest.WriteReject(conn, st, timeout)
}

// serveConn proxies one sensor connection: read the hello, route, dial the
// node, replay the hello, splice until either side closes.
func (c *Cluster) serveConn(conn net.Conn) {
	defer func() {
		c.untrack(conn)
		conn.Close()
	}()
	sensorID, err := ingest.ReadHello(conn, c.cfg.IOTimeout)
	if err != nil {
		return
	}
	n, ok := c.route(sensorID)
	if !ok {
		c.m.rejected.Inc()
		ingest.WriteReject(conn, ingest.StatusOverloaded, c.cfg.IOTimeout)
		return
	}
	c.m.routed.Inc()
	defer c.connEnd(sensorID, n)

	nodeConn, err := net.DialTimeout("tcp", n.addr, c.cfg.IOTimeout)
	if err != nil {
		// The node died between routing and dialing. Soft-reject: the
		// client backs off and its next hello re-routes over the updated
		// ring.
		c.m.dialFails.Inc()
		ingest.WriteReject(conn, ingest.StatusOverloaded, c.cfg.IOTimeout)
		return
	}
	defer nodeConn.Close()
	if err := ingest.WriteHello(nodeConn, sensorID, c.cfg.IOTimeout); err != nil {
		return
	}
	c.splice(conn, nodeConn)
}

// splice copies both directions until each closes, refreshing per-read
// deadlines so every blocking wait stays bounded. Liveness is the node's
// job (its read deadline kills silent sessions); the gateway only follows.
func (c *Cluster) splice(client, node net.Conn) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		c.copyHalf(node, client)
	}()
	c.copyHalf(client, node)
	wg.Wait()
}

// copyHalf streams src→dst until EOF or a hard error, then half-closes dst
// so its reader sees EOF while the reverse direction finishes.
func (c *Cluster) copyHalf(src, dst net.Conn) {
	buf := make([]byte, spliceBufSize)
	idle := 2 * c.cfg.IOTimeout
	for {
		src.SetReadDeadline(time.Now().Add(idle))
		n, err := src.Read(buf)
		if n > 0 {
			dst.SetWriteDeadline(time.Now().Add(c.cfg.IOTimeout))
			if _, werr := dst.Write(buf[:n]); werr != nil {
				return
			}
			c.m.proxyBytes.Add(int64(n))
		}
		if err != nil {
			if isTimeout(err) && !c.isClosed() {
				continue // bounded wait expired; the link itself is fine
			}
			if tc, ok := dst.(*net.TCPConn); ok {
				tc.CloseWrite()
			}
			return
		}
	}
}

func isTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

func (c *Cluster) isClosed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.closed
}

// route picks the node for a sensor's new connection and bumps the
// locator. Stickiness first: a sensor whose session state lives on a live
// node goes back to it, unless the ring (bounded-load variant) has since
// reassigned the sensor and the state is idle — then the state migrates to
// the ring target before the connection is admitted. Sensors with no
// usable state are placed fresh by the ring.
func (c *Cluster) route(sensorID int) (*node, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sweepLocked()

	target, ok := c.ringTargetLocked(sensorID)
	e := c.locator[sensorID]
	if e != nil {
		old := c.nodes[e.node]
		switch {
		case old.state == nodeDead:
			// The node died with the state; forget it and place fresh.
			c.dropEntryLocked(sensorID)
			e = nil
		case e.active > 0:
			// A live connection already carries the sensor; the node's
			// registry serializes the claim. State cannot move mid-flight.
			e.active++
			return old, true
		case old.state == nodeLive && (!ok || target == e.node):
			e.active++
			return old, true
		default:
			// Idle state on a live-but-reassigned or draining node:
			// migrate it to the ring target, then admit.
			if !ok {
				return nil, false
			}
			if c.migrateLocked(sensorID, old, c.nodes[target]) {
				c.moveEntryLocked(e, target)
				e.active++
				return c.nodes[target], true
			}
			if _, still := old.srv.PeekSession(sensorID); still {
				// The registry still holds the state but a racing teardown
				// hasn't released the claim yet; stay sticky and let the
				// node's own claim-wait serialize the connections.
				e.active++
				return old, true
			}
			// The state expired or vanished under us — exactly the case
			// where the node's sweep and the locator must agree: drop the
			// entry and re-admit from scratch.
			c.dropEntryLocked(sensorID)
			e = nil
		}
	}
	if !ok {
		return nil, false
	}
	c.putEntryLocked(sensorID, &locEntry{node: target, active: 1})
	return c.nodes[target], true
}

// ringTargetLocked is the bounded-load ring lookup over live nodes. It runs
// on every routed hello, so it must stay O(nodes): the per-node loads come
// from the incrementally maintained counters, never a locator scan.
func (c *Cluster) ringTargetLocked(sensorID int) (int, bool) {
	live, total := 0, 0
	for _, n := range c.nodes {
		if n.state == nodeLive {
			live++
			total += c.loads[n.id]
		}
	}
	if live == 0 {
		return 0, false
	}
	cap := 0
	if c.cfg.LoadFactor >= 1 {
		cap = int(math.Ceil(c.cfg.LoadFactor * float64(total+1) / float64(live)))
	}
	// The ring holds live nodes only, so lookupBounded consults loads for
	// live nodes alone — entries parked on draining/dead nodes never count
	// against the bound, matching the pre-counter semantics.
	return c.ring.lookupBounded(sensorID, func(n int) int { return c.loads[n] }, cap)
}

// migrateLocked hands a sensor's session off src to dst: ingest registry
// state (resume index, completion) plus the staged cursor when both nodes
// carry a cursor store. Reports false when src no longer holds usable
// state — evicted, expired, or claimed by a racing connection.
func (c *Cluster) migrateLocked(sensorID int, src, dst *node) bool {
	st, ok := src.srv.ExportSession(sensorID)
	if !ok {
		return false
	}
	if err := dst.srv.ImportSession(st); err != nil {
		// A racing connection claimed the sensor on dst; its server-side
		// resume handshake already owns the truth. Drop our copy.
		return false
	}
	if src.cursors != nil && dst.cursors != nil {
		if cur, ok := src.cursors.ExportCursor(sensorID); ok {
			dst.cursors.ImportCursor(cur)
		}
	}
	c.m.migrations.Inc()
	return true
}

// connEnd retires one proxied connection's locator claim, deriving the
// entry's eviction state from the node registry — the single source of
// truth — so the two tiers cannot disagree.
func (c *Cluster) connEnd(sensorID int, n *node) {
	st, found := n.srv.PeekSession(sensorID)
	c.mu.Lock()
	defer c.mu.Unlock()
	e := c.locator[sensorID]
	if e == nil || e.node != n.id {
		return
	}
	if e.active > 0 {
		e.active--
	}
	if e.active > 0 {
		return
	}
	if !found && n.state == nodeLive {
		// The registry already evicted (or never kept) the session; a
		// locator entry pointing at nothing would misroute the next hello.
		c.dropEntryLocked(sensorID)
		return
	}
	c.markDoneLocked(e, st.Done)
	e.idleSince = c.cfg.Clock()
}

// sweepLocked expires idle completed locator entries on the shared TTL, in
// lockstep with the node registries' own sweeps. The full-map pass is
// amortized to once per quarter-TTL: eviction only needs TTL-granularity
// timing, and an unconditional scan per routed hello is quadratic over a
// large fleet.
func (c *Cluster) sweepLocked() {
	if c.cfg.SessionTTL <= 0 {
		return
	}
	now := c.cfg.Clock()
	if now.Sub(c.lastSweep) < c.cfg.SessionTTL/4 {
		return
	}
	c.lastSweep = now
	for id, e := range c.locator {
		if e.done && e.active == 0 && now.Sub(e.idleSince) >= c.cfg.SessionTTL {
			delete(c.locator, id)
			c.m.evicted.Inc()
		}
	}
}

// AddNode builds, starts, and rings a new node, then rebalances: idle
// sessions whose ring primary moved to the new node migrate immediately;
// everything else — including every live connection — stays put.
func (c *Cluster) AddNode() (int, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return 0, ErrClosed
	}
	if !c.started {
		c.mu.Unlock()
		return 0, errors.New("cluster: AddNode before Start")
	}
	n, err := c.buildNode()
	c.mu.Unlock()
	if err != nil {
		return 0, err
	}
	if err := c.startNode(n); err != nil {
		return 0, err
	}
	c.rebalanceTo(n)
	return n.id, nil
}

// rebalanceTo migrates the idle sessions whose ring primary is now the
// joined node. Only ring-affected sensors move; the rest never notice.
func (c *Cluster) rebalanceTo(n *node) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for id, e := range c.locator {
		if e.active > 0 || e.node == n.id {
			continue
		}
		primary, ok := c.ring.lookup(id)
		if !ok || primary != n.id {
			continue
		}
		old := c.nodes[e.node]
		if old.state != nodeLive && old.state != nodeDraining {
			continue
		}
		if c.migrateLocked(id, old, n) {
			c.moveEntryLocked(e, n.id)
		} else {
			c.dropEntryLocked(id)
		}
	}
}

// DrainNode performs a rolling-restart drain: the node leaves the ring (no
// new sensors route to it), its in-flight sessions run to completion (ctx
// expiry escalates to a hard stop), and every session left in its registry
// migrates to the remaining nodes. Live sensors elsewhere never notice.
func (c *Cluster) DrainNode(ctx context.Context, id int) error {
	c.mu.Lock()
	n, err := c.nodeLocked(id)
	if err == nil && n.state != nodeLive {
		err = fmt.Errorf("cluster: node %d is %s", id, n.state)
	}
	if err != nil {
		c.mu.Unlock()
		return err
	}
	n.state = nodeDraining
	c.ring.remove(id)
	c.mu.Unlock()

	// Outside the lock: Drain blocks on in-flight sessions (and the ctx).
	drainErr := n.srv.Drain(ctx)
	sessions := n.srv.ExportSessions()

	c.mu.Lock()
	for _, st := range sessions {
		target, ok := c.ringTargetLocked(st.SensorID)
		if !ok {
			break // no live node left; state stays on the drained server
		}
		dst := c.nodes[target]
		if dst.srv.ImportSession(st) != nil {
			continue
		}
		if n.cursors != nil && dst.cursors != nil {
			if cur, ok := n.cursors.ExportCursor(st.SensorID); ok {
				dst.cursors.ImportCursor(cur)
			}
		}
		c.m.migrations.Inc()
		e := c.locator[st.SensorID]
		if e == nil || e.node == id {
			c.putEntryLocked(st.SensorID, &locEntry{node: target, done: st.Done, idleSince: c.cfg.Clock()})
		}
	}
	n.state = nodeDead
	c.mu.Unlock()
	<-n.serveDone
	return drainErr
}

// KillNode hard-stops a node, modeling a crash: its connections are
// severed and its registry and staged state are lost. Locator entries
// pointing at it are forgotten, so affected sensors are re-admitted
// elsewhere from scratch — the protocol's idempotent delivery (frame
// indices) makes the re-sent prefix harmless to exactly-once accounting
// downstream.
func (c *Cluster) KillNode(id int) error {
	c.mu.Lock()
	n, err := c.nodeLocked(id)
	if err == nil && n.state == nodeDead {
		err = fmt.Errorf("cluster: node %d is dead", id)
	}
	if err != nil {
		c.mu.Unlock()
		return err
	}
	prev := n.state
	n.state = nodeDead
	c.ring.remove(id)
	// Drop through the counter-maintenance helper, not an inline decrement:
	// the ad-hoc form silently skewed loads once entries could be done
	// (atomicmix now rejects it).
	for sid, e := range c.locator {
		if e.node == id {
			c.dropEntryLocked(sid)
		}
	}
	c.mu.Unlock()

	n.srv.Close()
	if prev != nodePending {
		<-n.serveDone
	}
	return nil
}

func (c *Cluster) nodeLocked(id int) (*node, error) {
	if id < 0 || id >= len(c.nodes) {
		return nil, fmt.Errorf("cluster: no node %d", id)
	}
	return c.nodes[id], nil
}

// NodeInfo describes one node for monitoring.
type NodeInfo struct {
	ID       int
	Addr     string
	State    string
	Sessions int // locator entries assigned to the node
	Active   int // proxied connections currently routed to it
}

// Stats is a point-in-time cluster snapshot.
type Stats struct {
	Nodes       []NodeInfo
	LocatorSize int
	ActiveConns int
}

// Nodes lists every node, including dead ones (ids are stable).
func (c *Cluster) Nodes() []NodeInfo {
	return c.Stats().Nodes
}

// Stats snapshots the cluster's routing state.
func (c *Cluster) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	sessions := make(map[int]int)
	active := make(map[int]int)
	for _, e := range c.locator {
		sessions[e.node]++
		active[e.node] += e.active
	}
	st := Stats{LocatorSize: len(c.locator), ActiveConns: int(c.activeCnt.Load())}
	for _, n := range c.nodes {
		st.Nodes = append(st.Nodes, NodeInfo{
			ID:       n.id,
			Addr:     n.addr,
			State:    n.state.String(),
			Sessions: sessions[n.id],
			Active:   active[n.id],
		})
	}
	return st
}

// Drain gracefully stops the whole cluster: the gateway stops accepting,
// in-flight proxied connections run to completion (ctx expiry severs
// them), then every live node drains. Safe to call once.
func (c *Cluster) Drain(ctx context.Context) error {
	c.mu.Lock()
	ln := c.ln
	c.ln = nil
	nodes := append([]*node(nil), c.nodes...)
	c.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	c.acceptWG.Wait()

	proxied := make(chan struct{})
	go func() {
		c.connWG.Wait()
		close(proxied)
	}()
	var err error
	select {
	case <-proxied:
	case <-ctx.Done():
		err = ctx.Err()
		c.severConns()
		<-proxied
	}
	for _, n := range nodes {
		c.mu.Lock()
		prev := n.state
		if prev != nodeDead {
			n.state = nodeDead
			c.ring.remove(n.id)
		}
		c.mu.Unlock()
		switch prev {
		case nodeLive:
			if derr := n.srv.Drain(ctx); derr != nil && err == nil {
				err = derr
			}
			<-n.serveDone
		case nodePending:
			n.srv.Close() // never served; nothing to drain or join
		}
	}
	c.markClosed()
	return err
}

// Close hard-stops everything: gateway listener, proxied connections, and
// every node. Idempotent.
func (c *Cluster) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	ln := c.ln
	c.ln = nil
	nodes := append([]*node(nil), c.nodes...)
	c.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	c.severConns()
	c.acceptWG.Wait()
	c.connWG.Wait()
	for _, n := range nodes {
		c.mu.Lock()
		prev := n.state
		if prev != nodeDead {
			n.state = nodeDead
			c.ring.remove(n.id)
		}
		c.mu.Unlock()
		if prev == nodeDead {
			continue
		}
		n.srv.Close()
		if prev != nodePending {
			<-n.serveDone
		}
	}
	return nil
}

func (c *Cluster) severConns() {
	c.mu.Lock()
	conns := make([]net.Conn, 0, len(c.conns))
	for conn := range c.conns {
		conns = append(conns, conn)
	}
	c.mu.Unlock()
	for _, conn := range conns {
		conn.Close()
	}
}

func (c *Cluster) markClosed() {
	c.mu.Lock()
	c.closed = true
	c.mu.Unlock()
}
