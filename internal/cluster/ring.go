// Package cluster fronts N in-process ingest nodes with a gateway: a
// consistent-hash ring routes each sensor to a node, a bounded-load check
// keeps hot key ranges from pinning one node, and a session-locator map
// plus node-to-node handoff of registry state and staging cursors lets a
// sensor resume on a different node than the one that first served it —
// the existing hello/resume/final-ack handshake carries everything else.
package cluster

import (
	"sort"
)

// defaultReplicas is the virtual-node count per physical node. 128 points
// per node keeps the ring's load spread within a few percent of uniform at
// single-digit node counts while lookup stays a ~10-deep binary search.
const defaultReplicas = 128

// ringPoint is one virtual node: a position on the hash circle owned by a
// physical node.
type ringPoint struct {
	hash uint64
	node int // index into the cluster's node table
}

// ring is a consistent-hash ring over physical node indices. It is not
// concurrency-safe; the cluster guards it with its own mutex.
type ring struct {
	replicas int
	points   []ringPoint // sorted by hash
}

func newRing(replicas int) *ring {
	if replicas <= 0 {
		replicas = defaultReplicas
	}
	return &ring{replicas: replicas}
}

// splitmix64 is the finalizer from the SplitMix64 generator — a cheap,
// well-mixed 64-bit hash whose avalanche keeps both virtual-node positions
// and sensor keys uniform on the circle. Deterministic by design: routing
// must reproduce across runs (internal/agevet detrand).
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// sensorPoint maps a sensor id onto the circle.
func sensorPoint(sensorID int) uint64 {
	return splitmix64(uint64(int64(sensorID)))
}

// virtualPoint maps (node, replica) onto the circle. Node and replica are
// mixed in one word — both are small — then avalanched.
func virtualPoint(node, replica int) uint64 {
	return splitmix64(uint64(int64(node))<<20 ^ uint64(int64(replica)) ^ 0xa5a5a5a5a5a5a5a5)
}

// add inserts node's virtual points into the ring.
func (r *ring) add(node int) {
	for i := 0; i < r.replicas; i++ {
		r.points = append(r.points, ringPoint{hash: virtualPoint(node, i), node: node})
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
}

// remove deletes node's virtual points.
func (r *ring) remove(node int) {
	kept := r.points[:0]
	for _, p := range r.points {
		if p.node != node {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// nodes returns the distinct node indices currently on the ring.
func (r *ring) nodes() []int {
	seen := map[int]bool{}
	var out []int
	for _, p := range r.points {
		if !seen[p.node] {
			seen[p.node] = true
			out = append(out, p.node)
		}
	}
	sort.Ints(out)
	return out
}

// lookup returns the sensor's primary node: the owner of the first virtual
// point at or clockwise of the sensor's position. ok is false on an empty
// ring.
func (r *ring) lookup(sensorID int) (node int, ok bool) {
	if len(r.points) == 0 {
		return 0, false
	}
	h := sensorPoint(sensorID)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap past the top of the circle
	}
	return r.points[i].node, true
}

// lookupBounded is the bounded-load variant (consistent hashing with
// bounded loads): walk clockwise from the sensor's position, skipping nodes
// whose current load is at or above the cap, so a hot key range spills onto
// its ring successors instead of pinning one node. load reports a node's
// current assignment count; cap is the per-node ceiling (<=0 disables the
// bound). Falls back to the unbounded primary when every node is full —
// shedding is the caller's decision, not the ring's.
func (r *ring) lookupBounded(sensorID int, load func(node int) int, cap int) (node int, ok bool) {
	if len(r.points) == 0 {
		return 0, false
	}
	h := sensorPoint(sensorID)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if start == len(r.points) {
		start = 0
	}
	if cap <= 0 {
		return r.points[start].node, true
	}
	tried := map[int]bool{}
	for i := 0; i < len(r.points); i++ {
		p := r.points[(start+i)%len(r.points)]
		if tried[p.node] {
			continue
		}
		tried[p.node] = true
		if load(p.node) < cap {
			return p.node, true
		}
	}
	return r.points[start].node, true
}
