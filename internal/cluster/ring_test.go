package cluster

import (
	"testing"
)

func ringMap(r *ring, keys int) map[int]int {
	m := make(map[int]int, keys)
	for k := 0; k < keys; k++ {
		n, ok := r.lookup(k)
		if !ok {
			panic("lookup on non-empty ring failed")
		}
		m[k] = n
	}
	return m
}

func TestRingLookupDeterministicAndSpread(t *testing.T) {
	r := newRing(0)
	for n := 0; n < 3; n++ {
		r.add(n)
	}
	const keys = 3000
	first := ringMap(r, keys)
	second := ringMap(r, keys)
	counts := map[int]int{}
	for k, n := range first {
		if second[k] != n {
			t.Fatalf("key %d: lookup not deterministic (%d then %d)", k, n, second[k])
		}
		counts[n]++
	}
	for n := 0; n < 3; n++ {
		if counts[n] < keys/6 {
			t.Errorf("node %d owns %d of %d keys; spread too skewed", n, counts[n], keys)
		}
	}
}

// TestRingJoinMovesOnlyAffectedKeys is the consistent-hashing contract the
// cluster's rebalance relies on: adding a node may claim keys, but no key
// moves between pre-existing nodes.
func TestRingJoinMovesOnlyAffectedKeys(t *testing.T) {
	r := newRing(0)
	for n := 0; n < 3; n++ {
		r.add(n)
	}
	const keys = 3000
	before := ringMap(r, keys)
	r.add(3)
	after := ringMap(r, keys)
	moved := 0
	for k := 0; k < keys; k++ {
		if after[k] == before[k] {
			continue
		}
		if after[k] != 3 {
			t.Fatalf("key %d moved %d -> %d; only moves onto the joined node are allowed",
				k, before[k], after[k])
		}
		moved++
	}
	if moved == 0 {
		t.Error("no key moved to the joined node; join did nothing")
	}
	if moved > keys/2 {
		t.Errorf("%d of %d keys moved on a 3->4 join; expected roughly 1/4", moved, keys)
	}
}

func TestRingLeaveMovesOnlyOrphanedKeys(t *testing.T) {
	r := newRing(0)
	for n := 0; n < 4; n++ {
		r.add(n)
	}
	const keys = 3000
	before := ringMap(r, keys)
	r.remove(2)
	after := ringMap(r, keys)
	for k := 0; k < keys; k++ {
		if before[k] != 2 && after[k] != before[k] {
			t.Fatalf("key %d on surviving node %d moved to %d after an unrelated leave",
				k, before[k], after[k])
		}
		if after[k] == 2 {
			t.Fatalf("key %d still maps to the removed node", k)
		}
	}
}

// TestRingBoundedLoad fills nodes sequentially and asserts the bounded
// lookup never assigns past the cap while any node has room.
func TestRingBoundedLoad(t *testing.T) {
	r := newRing(0)
	for n := 0; n < 3; n++ {
		r.add(n)
	}
	const keys, cap = 300, 101 // cap ~ keys/nodes: forces spill on hot ranges
	loads := map[int]int{}
	for k := 0; k < keys; k++ {
		n, ok := r.lookupBounded(k, func(n int) int { return loads[n] }, cap)
		if !ok {
			t.Fatal("bounded lookup failed on a non-empty ring")
		}
		if loads[n] >= cap {
			t.Fatalf("key %d assigned to node %d already at cap %d", k, n, cap)
		}
		loads[n]++
	}
	total := 0
	for _, l := range loads {
		total += l
	}
	if total != keys {
		t.Fatalf("assigned %d of %d keys", total, keys)
	}
}

// TestRingBoundedLoadFallsBack proves the full-ring fallback: with every
// node at cap the primary still answers — shedding is the caller's call.
func TestRingBoundedLoadFallsBack(t *testing.T) {
	r := newRing(0)
	r.add(0)
	r.add(1)
	primary, _ := r.lookup(42)
	n, ok := r.lookupBounded(42, func(int) int { return 100 }, 10)
	if !ok || n != primary {
		t.Fatalf("full ring: got (%d, %v), want primary %d", n, ok, primary)
	}
}

func TestRingEmpty(t *testing.T) {
	r := newRing(0)
	if _, ok := r.lookup(1); ok {
		t.Error("lookup on empty ring reported ok")
	}
	if _, ok := r.lookupBounded(1, func(int) int { return 0 }, 1); ok {
		t.Error("bounded lookup on empty ring reported ok")
	}
}
