package fixedpoint

import (
	"math"
	"testing"
	"testing/quick"
)

func TestFormatValidate(t *testing.T) {
	cases := []struct {
		f  Format
		ok bool
	}{
		{Format{Width: 16, NonFrac: 3}, true},
		{Format{Width: 1, NonFrac: 1}, true},
		{Format{Width: 32, NonFrac: 32}, true},
		{Format{Width: 0, NonFrac: 0}, false},
		{Format{Width: 33, NonFrac: 1}, false},
		{Format{Width: 8, NonFrac: 0}, false},
		{Format{Width: 8, NonFrac: 9}, true}, // coarse wide-range format (n > w)
		{Format{Width: 8, NonFrac: 33}, false},
		{Format{Width: -4, NonFrac: 1}, false},
	}
	for _, c := range cases {
		err := c.f.Validate()
		if (err == nil) != c.ok {
			t.Errorf("Validate(%+v) = %v, want ok=%v", c.f, err, c.ok)
		}
	}
}

func TestFormatDerived(t *testing.T) {
	f := Format{Width: 16, NonFrac: 3} // Q3.13
	if got := f.FracBits(); got != 13 {
		t.Errorf("FracBits = %d, want 13", got)
	}
	if got := f.Resolution(); got != math.Pow(2, -13) {
		t.Errorf("Resolution = %g", got)
	}
	if got := f.Max(); math.Abs(got-(4-math.Pow(2, -13))) > 1e-12 {
		t.Errorf("Max = %g, want ~3.99988", got)
	}
	if got := f.Min(); got != -4 {
		t.Errorf("Min = %g, want -4", got)
	}
	if got := f.String(); got != "Q3.13" {
		t.Errorf("String = %q", got)
	}
}

func TestFromFloatExactValues(t *testing.T) {
	f := Format{Width: 8, NonFrac: 4} // Q4.4: res 1/16, range [-8, 8)
	cases := []struct {
		in, out float64
	}{
		{0, 0},
		{1.5, 1.5},
		{-1.5, -1.5},
		{7.9375, 7.9375},  // max representable
		{100, 7.9375},     // clamp high
		{-100, -8},        // clamp low
		{0.03125, 0.0625}, // rounds away from zero at tie (0.5 ulp)
		{-0.03125, -0.0625},
		{0.01, 0}, // rounds down
	}
	for _, c := range cases {
		got := FromFloat(c.in, f).Float()
		if got != c.out {
			t.Errorf("FromFloat(%g) = %g, want %g", c.in, got, c.out)
		}
	}
}

func TestRoundTripExactForRepresentable(t *testing.T) {
	// Every representable value must round-trip with zero error.
	f := Format{Width: 10, NonFrac: 3}
	for raw := -512; raw <= 511; raw++ {
		x := float64(raw) * f.Resolution()
		v := FromFloat(x, f)
		if v.Float() != x {
			t.Fatalf("representable %g round-tripped to %g", x, v.Float())
		}
	}
}

func TestQuantizationErrorBound(t *testing.T) {
	// Property: for in-range x, error <= half resolution.
	f := Format{Width: 16, NonFrac: 3}
	prop := func(x float64) bool {
		x = math.Mod(x, 3.5) // keep within range
		if math.IsNaN(x) {
			return true
		}
		return QuantizationError(x, f) <= f.Resolution()/2+1e-12
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestBitsRoundTrip(t *testing.T) {
	// Property: Bits/FromBits are inverse for every format width.
	prop := func(raw int32, wseed uint8) bool {
		w := int(wseed%MaxWidth) + 1
		f := Format{Width: w, NonFrac: 1}
		// Truncate raw into range for width w.
		v := Value{Raw: raw, Format: f}
		got := FromBits(v.Bits(), f)
		// FromBits reconstructs raw mod 2^w with sign extension; check
		// agreement on the low w bits.
		mask := uint32(1)<<uint(w) - 1
		return uint32(got.Raw)&mask == uint32(raw)&mask
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestBitsSignExtension(t *testing.T) {
	f := Format{Width: 5, NonFrac: 3}
	v := FromFloat(-1.0, f) // raw = -4 in Q3.2
	if v.Raw != -4 {
		t.Fatalf("raw = %d, want -4", v.Raw)
	}
	bits := v.Bits()
	if bits != 0b11100 {
		t.Fatalf("bits = %05b, want 11100", bits)
	}
	back := FromBits(bits, f)
	if back.Raw != -4 || back.Float() != -1.0 {
		t.Errorf("FromBits = raw %d float %g", back.Raw, back.Float())
	}
}

func TestConvertWiderNarrower(t *testing.T) {
	wide := Format{Width: 16, NonFrac: 3}
	narrow := Format{Width: 6, NonFrac: 3}
	v := FromFloat(1.23456, wide)
	n := v.Convert(narrow)
	if math.Abs(n.Float()-1.23456) > narrow.Resolution()/2+1e-12 {
		t.Errorf("narrow conversion error %g too large", math.Abs(n.Float()-1.23456))
	}
	// Converting back to wide must not change the value further.
	w2 := n.Convert(wide)
	if w2.Float() != n.Float() {
		t.Errorf("widening changed value: %g -> %g", n.Float(), w2.Float())
	}
}

func TestCoarseWideRangeFormat(t *testing.T) {
	// n > w: a 9-bit value with 13 non-fractional bits stores the top 9
	// bits; the step is 2^(13-9) = 16 but the range stays [-4096, 4096).
	f := Format{Width: 9, NonFrac: 13}
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := f.Resolution(); got != 16 {
		t.Errorf("Resolution = %g, want 16", got)
	}
	if got := f.Max(); got != 4096-16 {
		t.Errorf("Max = %g, want 4080", got)
	}
	// Large values survive coarsely instead of clamping.
	v := FromFloat(3300, f)
	if math.Abs(v.Float()-3300) > 8 {
		t.Errorf("3300 -> %g; error exceeds half step", v.Float())
	}
	// Bit round trip preserves the coarse value.
	back := FromBits(v.Bits(), f)
	if back.Float() != v.Float() {
		t.Errorf("bit round trip changed value: %g -> %g", v.Float(), back.Float())
	}
}

func TestNonFracBitsFor(t *testing.T) {
	cases := []struct {
		x float64
		n int
	}{
		{0, 1},
		{0.5, 1},
		{0.999, 1},
		{1.0, 2},
		{1.5, 2},
		{2.0, 3},
		{3.99, 3},
		{4.0, 4},
		{-0.5, 1},
		{-1.0, 2}, // conservative: -1.0 gets 2 bits
		{-7.5, 4},
		{255, 9},
	}
	for _, c := range cases {
		if got := NonFracBitsFor(c.x); got != c.n {
			t.Errorf("NonFracBitsFor(%g) = %d, want %d", c.x, got, c.n)
		}
	}
}

func TestNonFracBitsForProperty(t *testing.T) {
	// Property: a format with NonFracBitsFor(x) non-fractional bits and
	// plenty of fractional bits represents x without clamping error.
	prop := func(x float64) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e6 {
			return true
		}
		n := NonFracBitsFor(x)
		w := n + 20
		if w > MaxWidth {
			w = MaxWidth
		}
		f := Format{Width: w, NonFrac: n}
		return x <= f.Max()+f.Resolution() && x >= f.Min()
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestNonFracBitsForSlice(t *testing.T) {
	if got := NonFracBitsForSlice(nil); got != 1 {
		t.Errorf("empty slice: %d, want 1", got)
	}
	if got := NonFracBitsForSlice([]float64{0.1, -3.5, 1.2}); got != 3 {
		t.Errorf("got %d, want 3", got)
	}
}

func BenchmarkFromFloat(b *testing.B) {
	f := Format{Width: 16, NonFrac: 3}
	for i := 0; i < b.N; i++ {
		_ = FromFloat(1.234567, f)
	}
}

func BenchmarkNonFracBitsFor(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = NonFracBitsFor(123.456)
	}
}
