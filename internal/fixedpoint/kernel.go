package fixedpoint

import "math"

// This file holds the precomputed quantization kernels used by the batch
// encoders. FromFloat/Float/FromBits recompute math.Pow on every call, which
// dominates encode cost when a group quantizes hundreds of values into the
// same format. A Quantizer/Dequantizer hoists those powers out of the loop.
// Powers of two are exact in float64, so the kernels are bit-identical to the
// per-value functions for every input — the golden wire vectors and the
// differential fuzz targets in internal/core pin that equivalence.

// Quantizer converts floats to format f's mantissas with the scale and clamp
// bounds precomputed. The zero value is not usable; construct with
// NewQuantizer.
type Quantizer struct {
	scale  float64 // 2^FracBits
	hi, lo float64 // clamp bounds on the scaled mantissa
	mask   uint32  // low Width bits
}

// NewQuantizer returns a Quantizer producing output identical to
// FromFloat(x, f) for every x.
func NewQuantizer(f Format) Quantizer {
	return Quantizer{
		scale: math.Pow(2, float64(f.FracBits())),
		hi:    math.Pow(2, float64(f.Width-1)) - 1,
		lo:    -math.Pow(2, float64(f.Width-1)),
		mask:  uint32(1)<<uint(f.Width) - 1,
	}
}

// Raw quantizes x to the signed mantissa, equal to FromFloat(x, f).Raw.
//
//age:hotpath
func (q Quantizer) Raw(x float64) int32 {
	r := math.Round(x * q.scale)
	if r > q.hi {
		r = q.hi
	}
	if r < q.lo {
		r = q.lo
	}
	return int32(r)
}

// Bits quantizes x straight to the packed two's-complement bit pattern,
// equal to FromFloat(x, f).Bits().
//
//age:hotpath
func (q Quantizer) Bits(x float64) uint32 {
	return uint32(q.Raw(x)) & q.mask
}

// Dequantizer converts packed bit patterns back to floats with the inverse
// scale and sign-extension masks precomputed. Construct with NewDequantizer.
type Dequantizer struct {
	inv  float64 // 2^-FracBits
	mask uint32  // low Width bits
	sign uint32  // sign bit of the width, 0 when Width == 32
	ext  uint32  // high bits ORed in to sign-extend
}

// NewDequantizer returns a Dequantizer producing output identical to
// FromBits(bits, f).Float() for every bit pattern.
func NewDequantizer(f Format) Dequantizer {
	w := uint(f.Width)
	mask := uint32(1)<<w - 1
	d := Dequantizer{
		inv:  math.Pow(2, -float64(f.FracBits())),
		mask: mask,
		ext:  ^mask,
	}
	if w < 32 { // at 32 bits int32 conversion sign-extends by itself
		d.sign = 1 << (w - 1)
	}
	return d
}

// Raw sign-extends the packed bit pattern, equal to FromBits(bits, f).Raw.
//
//age:hotpath
func (d Dequantizer) Raw(bits uint32) int32 {
	bits &= d.mask
	if bits&d.sign != 0 {
		return int32(bits | d.ext)
	}
	return int32(bits)
}

// Float reconstructs the real value, equal to FromBits(bits, f).Float().
//
//age:hotpath
func (d Dequantizer) Float(bits uint32) float64 {
	return float64(d.Raw(bits)) * d.inv
}
