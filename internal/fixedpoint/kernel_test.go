package fixedpoint

import (
	"math"
	"math/rand"
	"testing"
)

var kernelFormats = []Format{
	{Width: 16, NonFrac: 3}, {Width: 8, NonFrac: 2}, {Width: 32, NonFrac: 8},
	{Width: 6, NonFrac: 3}, {Width: 16, NonFrac: 20}, {Width: 20, NonFrac: 10},
	{Width: 1, NonFrac: 1}, {Width: 32, NonFrac: 32},
}

// TestQuantizerMatchesFromFloat pins the precomputed kernel to the per-value
// reference for edge values and random sweeps: bit-identical, not just close.
func TestQuantizerMatchesFromFloat(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for _, f := range kernelFormats {
		q := NewQuantizer(f)
		xs := []float64{
			0, math.Copysign(0, -1), 1, -1, 0.5, -0.5,
			f.Resolution(), -f.Resolution(), 0.5 * f.Resolution(),
			f.Max(), f.Min(), f.Max() * 2, f.Min() * 2,
			math.Pi, -math.E, math.Inf(1), math.Inf(-1),
		}
		for i := 0; i < 2000; i++ {
			xs = append(xs, (rng.Float64()*2-1)*f.Max()*2)
		}
		for _, x := range xs {
			want := FromFloat(x, f)
			if got := q.Raw(x); got != want.Raw {
				t.Fatalf("%v: Quantizer.Raw(%g) = %d, FromFloat %d", f, x, got, want.Raw)
			}
			if got := q.Bits(x); got != want.Bits() {
				t.Fatalf("%v: Quantizer.Bits(%g) = %#x, FromFloat %#x", f, x, got, want.Bits())
			}
		}
	}
}

// TestDequantizerMatchesFromBits sweeps bit patterns including both sign
// halves and the full-width case where int32 conversion must sign-extend.
func TestDequantizerMatchesFromBits(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	for _, f := range kernelFormats {
		d := NewDequantizer(f)
		for i := 0; i < 4000; i++ {
			bits := rng.Uint32()
			want := FromBits(bits, f)
			if got := d.Raw(bits); got != want.Raw {
				t.Fatalf("%v: Dequantizer.Raw(%#x) = %d, FromBits %d", f, bits, got, want.Raw)
			}
			got := d.Float(bits)
			wantF := want.Float()
			if got != wantF && !(math.IsNaN(got) && math.IsNaN(wantF)) {
				t.Fatalf("%v: Dequantizer.Float(%#x) = %g, FromBits %g", f, bits, got, wantF)
			}
		}
	}
}

// TestNonFracBitsForFrexp pins the Frexp rewrite to the old Pow-loop
// definition across the exact power-of-two boundaries it must honor.
func TestNonFracBitsForFrexp(t *testing.T) {
	ref := func(x float64) int {
		a := math.Abs(x)
		n := 1
		for n < MaxWidth && a >= math.Pow(2, float64(n-1)) {
			n++
		}
		return n
	}
	xs := []float64{0, 0.25, 0.5, 0.999, 1, 1.0001, -1, 1.5, 2, -2, 3, 4, 7.99, 8,
		math.Inf(1), math.Inf(-1), math.NaN(), math.MaxFloat64}
	for e := -4; e < MaxWidth+2; e++ {
		p := math.Pow(2, float64(e))
		xs = append(xs, p, -p, p*0.999999, p*1.000001)
	}
	rng := rand.New(rand.NewSource(73))
	for i := 0; i < 5000; i++ {
		xs = append(xs, (rng.Float64()*2-1)*math.Pow(2, float64(rng.Intn(40)-4)))
	}
	for _, x := range xs {
		if got, want := NonFracBitsFor(x), ref(x); got != want {
			t.Fatalf("NonFracBitsFor(%g) = %d, reference %d", x, got, want)
		}
	}
}

func BenchmarkQuantizerBits(b *testing.B) {
	f := Format{Width: 16, NonFrac: 3}
	q := NewQuantizer(f)
	xs := make([]float64, 1024)
	rng := rand.New(rand.NewSource(74))
	for i := range xs {
		xs[i] = (rng.Float64()*2 - 1) * f.Max()
	}
	b.ReportAllocs()
	var sink uint32
	for i := 0; i < b.N; i++ {
		sink += q.Bits(xs[i&1023])
	}
	_ = sink
}

func BenchmarkFromFloatBits(b *testing.B) {
	f := Format{Width: 16, NonFrac: 3}
	xs := make([]float64, 1024)
	rng := rand.New(rand.NewSource(74))
	for i := range xs {
		xs[i] = (rng.Float64()*2 - 1) * f.Max()
	}
	b.ReportAllocs()
	var sink uint32
	for i := 0; i < b.N; i++ {
		sink += FromFloat(xs[i&1023], f).Bits()
	}
	_ = sink
}
