// Package fixedpoint implements signed fixed-point (Q-format) arithmetic as
// used by low-power microcontrollers and by the AGE encoder.
//
// A fixed-point format is described by a total bit width w and a number of
// non-fractional bits n (paper notation: w0 and n0, §4.1). The n
// non-fractional bits include the sign bit, so a format (w, n) represents
// values in [-2^(n-1), 2^(n-1)) with a resolution of 2^-(w-n). The binary
// point sits in the (w-n)th place. n may exceed w — AGE assigns narrow
// widths to wide-ranged groups (§4.4) — in which case the stored integer
// holds the top w bits of the value and the resolution 2^(n-w) is coarser
// than one.
package fixedpoint

import (
	"fmt"
	"math"
)

// MaxWidth is the largest supported total bit width. The paper's datasets use
// at most 20 bits per feature (EOG, Table 3); 32 leaves headroom while
// keeping raw values in an int32.
const MaxWidth = 32

// Format describes a signed fixed-point representation.
type Format struct {
	// Width is the total number of bits, including the sign bit.
	Width int
	// NonFrac is the number of non-fractional bits, including the sign
	// bit. Fractional bits = Width - NonFrac.
	NonFrac int
}

// Validate reports whether the format is usable.
func (f Format) Validate() error {
	switch {
	case f.Width < 1 || f.Width > MaxWidth:
		return fmt.Errorf("fixedpoint: width %d out of range [1, %d]", f.Width, MaxWidth)
	case f.NonFrac < 1 || f.NonFrac > MaxWidth:
		return fmt.Errorf("fixedpoint: non-fractional bits %d out of range [1, %d]", f.NonFrac, MaxWidth)
	}
	return nil
}

// FracBits returns the number of fractional bits in the format. It is
// negative when NonFrac exceeds Width (coarse, wide-range formats).
func (f Format) FracBits() int { return f.Width - f.NonFrac }

// Resolution returns the smallest positive representable increment.
func (f Format) Resolution() float64 { return math.Pow(2, -float64(f.FracBits())) }

// Max returns the largest representable value.
func (f Format) Max() float64 {
	return math.Pow(2, float64(f.NonFrac-1)) - f.Resolution()
}

// Min returns the smallest (most negative) representable value.
func (f Format) Min() float64 { return -math.Pow(2, float64(f.NonFrac-1)) }

// String implements fmt.Stringer using Q-notation, e.g. "Q3.13" for a
// 16-bit value with 3 non-fractional (incl. sign) and 13 fractional bits.
func (f Format) String() string {
	return fmt.Sprintf("Q%d.%d", f.NonFrac, f.FracBits())
}

// Value is a quantity encoded in some fixed-point format. Raw is the signed
// integer mantissa: the represented value is Raw * 2^-(Width-NonFrac).
type Value struct {
	Raw    int32
	Format Format
}

// FromFloat quantizes x into format f, clamping to the representable range
// and rounding to the nearest representable value (ties away from zero,
// matching common MCU rounding).
//
//age:hotpath
func FromFloat(x float64, f Format) Value {
	scaled := x * math.Pow(2, float64(f.FracBits()))
	r := math.Round(scaled)
	hi := math.Pow(2, float64(f.Width-1)) - 1
	lo := -math.Pow(2, float64(f.Width-1))
	if r > hi {
		r = hi
	}
	if r < lo {
		r = lo
	}
	return Value{Raw: int32(r), Format: f}
}

// Float returns the real value represented by v.
//
//age:hotpath
func (v Value) Float() float64 {
	return float64(v.Raw) * math.Pow(2, -float64(v.Format.FracBits()))
}

// Convert re-quantizes v into format g. The result is the closest value in g
// to v's represented value.
func (v Value) Convert(g Format) Value { return FromFloat(v.Float(), g) }

// QuantizationError returns |x - FromFloat(x, f).Float()|.
func QuantizationError(x float64, f Format) float64 {
	return math.Abs(x - FromFloat(x, f).Float())
}

// Bits returns the raw mantissa as an unsigned bit pattern of f.Width bits,
// suitable for packing into a bit stream. The sign is stored in two's
// complement truncated to the width.
//
//age:hotpath
func (v Value) Bits() uint32 {
	mask := uint32(1)<<uint(v.Format.Width) - 1
	return uint32(v.Raw) & mask
}

// FromBits reconstructs a Value from a two's-complement bit pattern of
// f.Width bits.
//
//age:hotpath
func FromBits(bits uint32, f Format) Value {
	w := uint(f.Width)
	mask := uint32(1)<<w - 1
	bits &= mask
	raw := int32(bits)
	if w < 32 && bits&(1<<(w-1)) != 0 { // sign-extend
		raw = int32(bits | ^mask)
	}
	return Value{Raw: raw, Format: f}
}

// NonFracBitsFor returns the minimum number of non-fractional bits (including
// the sign bit) needed so that x fits in a signed format without clamping.
// This is the value's "exponent" in the paper's terminology (§4.3).
//
//age:hotpath
func NonFracBitsFor(x float64) int {
	a := math.Abs(x)
	if a < 1 { // sign bit alone represents [-1, 1); also catches NaN
		return 1
	}
	if a >= 1<<(MaxWidth-1) { // also catches +Inf
		return MaxWidth
	}
	// 2^(exp-1) <= a < 2^exp, so exp+1 bits (incl. sign) avoid clamping.
	_, exp := math.Frexp(a)
	return exp + 1
}

// NonFracBitsForSlice returns the minimum non-fractional bits covering every
// element of xs. It returns 1 for an empty slice.
func NonFracBitsForSlice(xs []float64) int {
	n := 1
	for _, x := range xs {
		if m := NonFracBitsFor(x); m > n {
			n = m
		}
	}
	return n
}
