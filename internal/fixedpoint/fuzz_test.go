package fixedpoint

import (
	"math"
	"testing"
)

// FuzzQuantizeRoundTrip checks the quantizer across arbitrary values and
// formats: Bits/FromBits must be lossless for any quantized value, in-range
// inputs must land within half a resolution step (round-to-nearest), and
// every output must respect the format's clamp range. This is the §4.1
// contract the encoders build on — a sign-extension or clamp bug here skews
// every reconstruction-error figure.
func FuzzQuantizeRoundTrip(f *testing.F) {
	// Seeds mirror the formats the paper's datasets use (Table 3) plus the
	// extremes: 1-bit formats, coarse NonFrac > Width shapes, and boundaries.
	f.Add(3.14159, uint8(16), uint8(3))
	f.Add(-0.001, uint8(9), uint8(9))
	f.Add(1e6, uint8(20), uint8(16))
	f.Add(-1.0, uint8(1), uint8(1))
	f.Add(0.0, uint8(32), uint8(1))
	f.Add(1e300, uint8(16), uint8(3))
	f.Add(7.5, uint8(8), uint8(12)) // NonFrac > Width: coarse resolution
	f.Fuzz(func(t *testing.T, x float64, wb, nb uint8) {
		fm := Format{Width: int(wb%MaxWidth) + 1, NonFrac: int(nb%MaxWidth) + 1}
		if err := fm.Validate(); err != nil {
			t.Fatalf("constructed format invalid: %v", err)
		}
		v := FromFloat(x, fm)
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return // no-panic is the only property for non-finite inputs
		}

		// Lossless wire round-trip for any quantized value.
		rt := FromBits(v.Bits(), fm)
		if rt != v {
			t.Fatalf("FromBits(Bits(%v)) = %v (x=%g, fmt=%v)", v, rt, x, fm)
		}

		// Clamp range: the represented value never escapes [Min, Max].
		got := v.Float()
		if got < fm.Min() || got > fm.Max() {
			t.Fatalf("Float() = %g outside [%g, %g] (x=%g, fmt=%v)", got, fm.Min(), fm.Max(), x, fm)
		}

		// In-range inputs quantize within half a resolution step
		// (round-to-nearest, ties away from zero). The tiny slack covers
		// subnormal intermediates in the scale multiply.
		if x >= fm.Min() && x <= fm.Max() {
			if qe := QuantizationError(x, fm); qe > fm.Resolution()*0.5000001 {
				t.Fatalf("quantization error %g > resolution/2 = %g (x=%g, fmt=%v)",
					qe, fm.Resolution()/2, x, fm)
			}
		}
	})
}
