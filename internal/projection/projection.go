// Package projection implements the consumption tier of the streaming
// pipeline (decode → stage → project): an Engine taps the ingest server's
// delivery path (it implements ingest.Stager structurally, so ingest never
// imports this package), decodes each delivered frame into a
// staging.Record, and runs independent projection workers that fold the
// staged logs into live windowed KPIs:
//
//   - mae: rolling reconstruction error — each staged batch is rebuilt
//     with reconstruct.Linear and scored against the harness-supplied
//     ground truth (plain and deviation-weighted MAE, mirroring the
//     offline reconstruct.Accumulator, plus a rolling window mean).
//   - events: label-based detections and per-sensor label transitions,
//     plus a threshold detector over the decoded measurements.
//   - privacy: the live leakage monitor — Shannon entropy of the
//     observed message sizes, NMI between sizes and event labels
//     (stats.EntropyCounts / stats.NMICounts over count tables, so the
//     figures are independent of cross-sensor arrival interleaving), and
//     per-sensor arrival age (inter-arrival mean/max and staleness).
//
// The mae and events workers are per-sensor and read each log to its
// head. The privacy worker correlates across sensors, so it reads only
// below the stage's visibility watermark (MIN over incomplete logs of the
// head) — a quiesced snapshot is then a pure function of the per-sensor
// streams, not of how their arrivals interleaved.
//
// # Sequence = index invariant
//
// The tap stages every delivered frame exactly once (replays after a
// server-side eviction are deduplicated by a per-sensor next-index
// cursor), and frames that fail to unseal or decode are staged as empty
// records rather than skipped. A sensor's staged sequence numbers
// therefore equal its frame indices, which is what makes checkpoints
// refeedable: Restore rebuilds the stage at each sensor's lowest worker
// cursor, and feeding the frames from that index onward reproduces the
// engine's state (workers skip what their checkpointed cursors already
// cover).
package projection

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/ingest"
	"repro/internal/staging"
)

// Config parameterizes an Engine.
type Config struct {
	// T and D are the batch geometry used for reconstruction.
	T, D int

	// Open, when set, unseals the wire payload (e.g. a seccomm
	// Sealer.Open) before unmarking/decoding. Nil means plaintext frames.
	Open func(msg []byte) ([]byte, error)
	// Unmark strips the pacer's in-payload real/dummy marker before
	// decoding. The server never stages dummies, so an Unmark here only
	// ever sees real frames.
	Unmark bool
	// Decode turns a plaintext payload into a batch. Nil disables the
	// batch-level KPIs (mae, threshold events); size/arrival KPIs still
	// run.
	Decode core.Decoder
	// Truth supplies ground truth for frame index of a sensor: the full
	// T×D window (nil when unknown — the mae KPI skips the record) and
	// the window's event label (-1 when unknown). Harnesses that know
	// the generative process wire this; production leaves it nil.
	Truth func(sensorID, index int) (truth [][]float64, label int, ok bool)

	// Window is the rolling-MAE window length (default 64).
	Window int
	// EventThreshold fires the threshold detector when any decoded
	// measurement's absolute value reaches it (0 disables).
	EventThreshold float64
	// SizeBucket coarsens wire sizes for the entropy/NMI tables (bytes
	// per bucket, default 1 = exact sizes).
	SizeBucket int

	// Retain is how many staged records per sensor survive trimming
	// below the slowest worker's cursor (default 256).
	Retain int

	// CheckpointEvery emits a checkpoint to CheckpointSink every N
	// staged records (0 disables).
	CheckpointEvery int
	CheckpointSink  func(Checkpoint)

	// Now supplies the arrival clock (UnixNano); defaults to time.Now.
	// Tests inject a fixed clock to make arrival KPIs deterministic.
	Now func() int64
}

func (c Config) withDefaults() Config {
	if c.Window <= 0 {
		c.Window = 64
	}
	if c.SizeBucket <= 0 {
		c.SizeBucket = 1
	}
	if c.Retain <= 0 {
		c.Retain = 256
	}
	if c.Now == nil {
		c.Now = func() int64 { return time.Now().UnixNano() }
	}
	return c
}

// Engine is the projection pipeline: the ingest tap, the staged logs, and
// the KPI workers. Create with New (or Restore), attach as
// ingest.ServerConfig.Stager, and Close after the server has drained.
type Engine struct {
	cfg   Config
	stage *staging.Stage

	mu        sync.Mutex
	nextIndex map[int]int  // per-sensor dedupe cursor (tap side)
	assigned  map[int]int  // per-sensor Total from the latest Admit
	staged    atomic.Int64 // records appended
	decodeErr atomic.Int64 // frames that failed to open/unmark/decode
	lastCp    int64        // staged count at the last periodic checkpoint

	workers []*worker
	closing chan struct{}
	wg      sync.WaitGroup
}

var _ ingest.Stager = (*Engine)(nil)

// New builds an Engine and starts its workers.
func New(cfg Config) *Engine {
	return newEngine(cfg.withDefaults(), staging.New(), nil)
}

func newEngine(cfg Config, stage *staging.Stage, restored map[string]WorkerCheckpoint) *Engine {
	e := &Engine{
		cfg:       cfg,
		stage:     stage,
		nextIndex: map[int]int{},
		assigned:  map[int]int{},
		closing:   make(chan struct{}),
	}
	for id := range stage.Checkpoint().Sensors {
		e.nextIndex[id] = stage.Log(id).Head()
	}
	e.workers = []*worker{
		newWorker("mae", false, newMAEKPI(cfg)),
		newWorker("events", false, newEventKPI(cfg)),
		newWorker("privacy", true, newPrivacyKPI(cfg)),
	}
	for _, w := range e.workers {
		if wc, ok := restored[w.name]; ok {
			w.restore(wc)
		}
		e.wg.Add(1)
		go e.runWorker(w)
	}
	if cfg.CheckpointEvery > 0 && cfg.CheckpointSink != nil {
		e.wg.Add(1)
		go e.runCheckpointer()
	}
	return e
}

// Admit implements ingest.Stager: a session was accepted for the sensor.
func (e *Engine) Admit(sensorID, resume, total int) {
	e.mu.Lock()
	e.assigned[sensorID] = total
	e.mu.Unlock()
	// A sensor that completed, was evicted server-side, and reconnected
	// streams again from 0; its log must pin the watermark once more.
	e.stage.Reopen(sensorID)
}

// StageFrame implements ingest.Stager: decode the delivered frame and
// append it to the sensor's staged log. Replayed indices (resume after a
// server-side eviction) are dropped so each frame stages exactly once.
func (e *Engine) StageFrame(sensorID, index int, msg []byte) {
	e.mu.Lock()
	next := e.nextIndex[sensorID]
	if index < next {
		e.mu.Unlock()
		return
	}
	e.nextIndex[sensorID] = index + 1
	e.mu.Unlock()

	rec := staging.Record{
		Index:        index,
		WireBytes:    len(msg),
		Label:        -1,
		RecvUnixNano: e.cfg.Now(),
	}
	if batch, err := e.decode(msg); err != nil {
		e.decodeErr.Add(1)
	} else {
		rec.Indices = batch.Indices
		rec.Values = batch.Values
	}
	if e.cfg.Truth != nil {
		if truth, label, ok := e.cfg.Truth(sensorID, index); ok {
			rec.Truth = truth
			rec.Label = label
		}
	}
	e.stage.Append(sensorID, rec)
	e.staged.Add(1)
}

// decode runs the open → unmark → decode chain on one wire payload,
// copying the result so nothing aliases the server's frame buffer.
func (e *Engine) decode(msg []byte) (core.Batch, error) {
	payload := msg
	if e.cfg.Open != nil {
		var err error
		if payload, err = e.cfg.Open(payload); err != nil {
			return core.Batch{}, err
		}
	}
	if e.cfg.Unmark {
		data, dummy, err := ingest.Unmark(payload)
		if err != nil {
			return core.Batch{}, err
		}
		if dummy {
			return core.Batch{}, fmt.Errorf("projection: dummy frame reached the stage")
		}
		payload = data
	}
	if e.cfg.Decode == nil {
		return core.Batch{}, nil
	}
	b, err := e.cfg.Decode.Decode(payload)
	if err != nil {
		return core.Batch{}, err
	}
	// Defensive copy: Decoder implementations may reuse storage, and the
	// staged record outlives this call by design.
	cp := core.Batch{Indices: append([]int(nil), b.Indices...)}
	cp.Values = make([][]float64, len(b.Values))
	for i, row := range b.Values {
		cp.Values[i] = append([]float64(nil), row...)
	}
	return cp, nil
}

// SessionEnd implements ingest.Stager: the connection retired. A
// completed stream releases the sensor from the visibility watermark.
func (e *Engine) SessionEnd(sensorID int, completed bool) {
	if completed {
		e.stage.Complete(sensorID)
	}
}

// ExportCursor removes and returns the sensor's staged coordinate for
// migration to another node's engine (the cluster gateway's CursorStore
// hook). The tap's dedupe cursor goes with it: the sensor's frames now
// stage elsewhere.
func (e *Engine) ExportCursor(sensorID int) (staging.Cursor, bool) {
	e.mu.Lock()
	delete(e.nextIndex, sensorID)
	delete(e.assigned, sensorID)
	e.mu.Unlock()
	return e.stage.ExportCursor(sensorID)
}

// ImportCursor seeds the sensor's staged log from a migrated cursor; see
// staging.Stage.ImportCursor for the merge rules.
func (e *Engine) ImportCursor(c staging.Cursor) {
	e.stage.ImportCursor(c)
}

// Close drains the workers — every staged record is projected — and
// stops them. Call after the ingest server has drained, so no more
// StageFrame calls arrive; the snapshot taken after Close is then a pure
// function of the delivered streams.
func (e *Engine) Close() {
	close(e.closing)
	e.wg.Wait()
}

// runWorker is each projection worker's loop: drain what is visible,
// then block on the stage's signal. On Close it performs a final drain
// so nothing staged is left unprojected.
func (e *Engine) runWorker(w *worker) {
	defer e.wg.Done()
	ch := e.stage.Subscribe()
	for {
		if e.drainOnce(w) {
			continue
		}
		select {
		case <-ch:
		case <-e.closing:
			for e.drainOnce(w) {
			}
			return
		}
	}
}

// drainOnce advances the worker's cursors to its visibility bound on
// every sensor, reporting whether any record was processed. After
// progress it trims staged storage the slowest worker no longer needs.
func (e *Engine) drainOnce(w *worker) bool {
	bound := -1
	if w.watermark {
		bound = e.stage.Watermark()
	}
	progressed := false
	for _, id := range e.stage.Sensors() {
		l := e.stage.Log(id)
		limit := l.Head()
		if bound >= 0 && bound < limit {
			limit = bound
		}
		for {
			cur := w.cursor(id)
			if cur >= limit {
				break
			}
			rec, ok := l.Get(cur)
			if ok {
				w.apply(id, rec)
			}
			// A trimmed record is unrecoverable; either way the cursor
			// advances so the worker cannot spin.
			w.setCursor(id, cur+1)
			progressed = true
		}
	}
	if progressed {
		e.trim()
	}
	return progressed
}

// trim releases staged storage below the slowest worker on each sensor,
// keeping cfg.Retain records for late observers.
func (e *Engine) trim() {
	for _, id := range e.stage.Sensors() {
		min := -1
		for _, w := range e.workers {
			c := w.cursor(id)
			if min < 0 || c < min {
				min = c
			}
		}
		if min > 0 {
			e.stage.TrimBelow(id, min, e.cfg.Retain)
		}
	}
}

// runCheckpointer emits a checkpoint every CheckpointEvery staged
// records.
func (e *Engine) runCheckpointer() {
	defer e.wg.Done()
	ch := e.stage.Subscribe()
	for {
		// Check before blocking: records staged before the subscription
		// took effect would otherwise never trigger a signal.
		n := e.staged.Load()
		if n-atomic.LoadInt64(&e.lastCp) >= int64(e.cfg.CheckpointEvery) {
			atomic.StoreInt64(&e.lastCp, n)
			e.cfg.CheckpointSink(e.Checkpoint())
			continue
		}
		select {
		case <-ch:
		case <-e.closing:
			return
		}
	}
}

// Checkpoint captures the engine's durable state: each worker's cursors
// and aggregates, and per-sensor completion flags. The stage's restart
// coordinate for a sensor is the minimum worker cursor — everything below
// it is fully projected, everything at or above it will be refed.
type Checkpoint struct {
	Sensors map[int]SensorCheckpoint    `json:"sensors"`
	Workers map[string]WorkerCheckpoint `json:"workers"`
}

// SensorCheckpoint is one sensor's restart coordinate.
type SensorCheckpoint struct {
	Resume   int  `json:"resume"` // min worker cursor = first unprojected frame
	Complete bool `json:"complete"`
}

// WorkerCheckpoint is one worker's cursors plus its KPI aggregate state.
type WorkerCheckpoint struct {
	Cursors map[int]int     `json:"cursors"`
	State   json.RawMessage `json:"state"`
}

// Checkpoint snapshots the restartable state. Safe to call concurrently
// with staging and projection; each worker's (cursors, state) pair is
// captured atomically, which is all refeed consistency needs.
func (e *Engine) Checkpoint() Checkpoint {
	cp := Checkpoint{
		Sensors: map[int]SensorCheckpoint{},
		Workers: map[string]WorkerCheckpoint{},
	}
	for _, w := range e.workers {
		cp.Workers[w.name] = w.checkpoint()
	}
	stageCp := e.stage.Checkpoint()
	for id, lc := range stageCp.Sensors {
		min := -1
		for _, w := range e.workers {
			c := cp.Workers[w.name].Cursors[id]
			if min < 0 || c < min {
				min = c
			}
		}
		if min < 0 {
			min = 0
		}
		cp.Sensors[id] = SensorCheckpoint{Resume: min, Complete: lc.Complete}
	}
	return cp
}

// Restore rebuilds an Engine from a checkpoint. Each sensor's staged log
// resumes at its Resume coordinate; feeding the sensor's frames from that
// index onward (via StageFrame or Feed) reproduces the pre-checkpoint
// engine — workers skip the prefix their checkpointed cursors already
// cover.
func Restore(cfg Config, cp Checkpoint) *Engine {
	sc := staging.Checkpoint{Sensors: map[int]staging.LogCheckpoint{}}
	for id, s := range cp.Sensors {
		sc.Sensors[id] = staging.LogCheckpoint{Head: s.Resume, Complete: s.Complete}
	}
	return newEngine(cfg.withDefaults(), staging.Restore(sc), cp.Workers)
}

// Feed stages one frame directly, bypassing the ingest tap — the refeed
// path for tests and offline replay. Unlike StageFrame the payload is
// already plaintext and undecoded work is skipped.
func (e *Engine) Feed(sensorID int, rec staging.Record) {
	e.mu.Lock()
	next := e.nextIndex[sensorID]
	if rec.Index < next {
		e.mu.Unlock()
		return
	}
	e.nextIndex[sensorID] = rec.Index + 1
	e.mu.Unlock()
	e.stage.Append(sensorID, rec)
	e.staged.Add(1)
}

// CompleteSensor marks a directly-fed sensor's stream finished.
func (e *Engine) CompleteSensor(sensorID int) { e.stage.Complete(sensorID) }

// Snapshot is the queryable state of every projection, JSON-shaped for
// the HTTP endpoint and the ageload report.
type Snapshot struct {
	Sensors       int   `json:"sensors"`
	StagedRecords int64 `json:"staged_records"`
	DecodeErrors  int64 `json:"decode_errors"`
	Watermark     int   `json:"watermark"`

	// Coverage relates staged records to the fleet's assigned frames.
	AssignedFrames int64   `json:"assigned_frames"`
	CoveragePct    float64 `json:"coverage_pct"`

	MAE     MAESnapshot     `json:"mae"`
	Events  EventSnapshot   `json:"events"`
	Privacy PrivacySnapshot `json:"privacy"`
}

// Snapshot captures the current state of every projection. Figures are
// exact after Close (or any quiescent moment); mid-stream they trail the
// tap by whatever is staged but not yet projected.
func (e *Engine) Snapshot() Snapshot {
	snap := Snapshot{
		StagedRecords: e.staged.Load(),
		DecodeErrors:  e.decodeErr.Load(),
		Watermark:     e.stage.Watermark(),
	}
	snap.Sensors = len(e.stage.Sensors())
	e.mu.Lock()
	for _, total := range e.assigned {
		snap.AssignedFrames += int64(total)
	}
	e.mu.Unlock()
	if snap.AssignedFrames > 0 {
		snap.CoveragePct = 100 * float64(snap.StagedRecords) / float64(snap.AssignedFrames)
	}
	for _, w := range e.workers {
		w.mu.Lock()
		switch k := w.kpi.(type) {
		case *maeKPI:
			snap.MAE = k.snapshot()
		case *eventKPI:
			snap.Events = k.snapshot()
		case *privacyKPI:
			snap.Privacy = k.snapshot(e.cfg.Now())
		}
		w.mu.Unlock()
	}
	return snap
}

// Handler serves the engine's snapshot as JSON — mounted next to /metrics
// via metrics.Registry.ListenAndServeWith.
func (e *Engine) Handler() http.Handler {
	return http.HandlerFunc(func(rw http.ResponseWriter, req *http.Request) {
		rw.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(rw)
		enc.SetIndent("", "  ")
		_ = enc.Encode(e.Snapshot())
	})
}

// worker binds one KPI to its cursors and visibility rule.
type worker struct {
	name      string
	watermark bool // bound reads by the stage watermark

	mu      sync.Mutex
	cursors map[int]int
	kpi     kpi
}

// kpi folds records into an aggregate and serializes it for checkpoints.
type kpi interface {
	apply(sensorID int, rec staging.Record)
	marshal() json.RawMessage
	unmarshal(json.RawMessage)
}

func newWorker(name string, watermark bool, k kpi) *worker {
	return &worker{name: name, watermark: watermark, cursors: map[int]int{}, kpi: k}
}

func (w *worker) cursor(id int) int {
	w.mu.Lock()
	c := w.cursors[id]
	w.mu.Unlock()
	return c
}

func (w *worker) setCursor(id, c int) {
	w.mu.Lock()
	w.cursors[id] = c
	w.mu.Unlock()
}

func (w *worker) apply(id int, rec staging.Record) {
	w.mu.Lock()
	w.kpi.apply(id, rec)
	w.mu.Unlock()
}

func (w *worker) checkpoint() WorkerCheckpoint {
	w.mu.Lock()
	defer w.mu.Unlock()
	cp := WorkerCheckpoint{Cursors: make(map[int]int, len(w.cursors)), State: w.kpi.marshal()}
	for id, c := range w.cursors {
		cp.Cursors[id] = c
	}
	return cp
}

func (w *worker) restore(cp WorkerCheckpoint) {
	w.mu.Lock()
	defer w.mu.Unlock()
	for id, c := range cp.Cursors {
		w.cursors[id] = c
	}
	if len(cp.State) > 0 {
		w.kpi.unmarshal(cp.State)
	}
}

// sortedIDs returns m's keys in ascending order (deterministic snapshots).
func sortedIDs[V any](m map[int]V) []int {
	ids := make([]int, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}
