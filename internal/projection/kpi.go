// KPI reductions must be replay-deterministic: a projection rebuilt from a
// checkpoint (or recomputed after a crash) has to land on byte-identical
// snapshots, so the count-map folds here are order-independent and detrand
// enforces the contract file-wide.
//
//age:deterministic
package projection

import (
	"encoding/json"
	"strconv"

	"repro/internal/reconstruct"
	"repro/internal/staging"
	"repro/internal/stats"
)

// MAESnapshot reports the rolling reconstruction-error projection.
type MAESnapshot struct {
	// Count is how many truth-bearing records were scored.
	Count int64 `json:"count"`
	// MeanMAE and WeightedMAE mirror reconstruct.Accumulator's two
	// figures over every scored record.
	MeanMAE     float64 `json:"mean_mae"`
	WeightedMAE float64 `json:"weighted_mae"`
	// RollingMAE is the mean over the last Window scored records.
	RollingMAE float64 `json:"rolling_mae"`
	Window     int     `json:"window"`
	// ReconErrors counts records whose batch failed to reconstruct.
	ReconErrors int64 `json:"recon_errors"`
	// PerSensor maps sensor id (as a JSON string) to its mean MAE.
	PerSensor map[string]float64 `json:"per_sensor_mean"`
}

// maeKPI scores each truth-bearing record's linear reconstruction. Its
// sums mirror reconstruct.Accumulator — including the all-zero-weight
// fallback — so a quiesced snapshot is comparable to the offline
// evaluation to within float summation order.
type maeKPI struct {
	t, d   int
	window int

	state maeState
	ring  []float64 // last window MAEs, ringNext the write position
}

// maeState is the checkpointable aggregate.
type maeState struct {
	Count       int64              `json:"count"`
	SumMAE      float64            `json:"sum_mae"`
	SumWeighted float64            `json:"sum_weighted"`
	SumWeights  float64            `json:"sum_weights"`
	ReconErrors int64              `json:"recon_errors"`
	Ring        []float64          `json:"ring"`
	RingNext    int                `json:"ring_next"`
	RingLen     int                `json:"ring_len"`
	PerSensor   map[int]*sensorMAE `json:"per_sensor"`
}

type sensorMAE struct {
	Count int64   `json:"count"`
	Sum   float64 `json:"sum"`
}

func newMAEKPI(cfg Config) *maeKPI {
	return &maeKPI{
		t: cfg.T, d: cfg.D, window: cfg.Window,
		state: maeState{PerSensor: map[int]*sensorMAE{}},
		ring:  make([]float64, 0, cfg.Window),
	}
}

func (k *maeKPI) apply(sensorID int, rec staging.Record) {
	if rec.Truth == nil || rec.Indices == nil {
		return
	}
	recon, err := reconstruct.Linear(rec.Indices, rec.Values, k.t, k.d)
	if err != nil {
		k.state.ReconErrors++
		return
	}
	mae, err := reconstruct.MAE(recon, rec.Truth)
	if err != nil {
		k.state.ReconErrors++
		return
	}
	w := reconstruct.SequenceStdDev(rec.Truth)
	k.state.Count++
	k.state.SumMAE += mae
	k.state.SumWeighted += mae * w
	k.state.SumWeights += w
	s := k.state.PerSensor[sensorID]
	if s == nil {
		s = &sensorMAE{}
		k.state.PerSensor[sensorID] = s
	}
	s.Count++
	s.Sum += mae
	if len(k.ring) < k.window {
		k.ring = append(k.ring, mae)
	} else {
		k.ring[k.state.RingNext%k.window] = mae
	}
	k.state.RingNext++
}

func (k *maeKPI) snapshot() MAESnapshot {
	snap := MAESnapshot{
		Count:       k.state.Count,
		Window:      k.window,
		ReconErrors: k.state.ReconErrors,
		PerSensor:   map[string]float64{},
	}
	if k.state.Count > 0 {
		snap.MeanMAE = k.state.SumMAE / float64(k.state.Count)
	}
	// The deviation-weighted figure falls back to the plain mean when
	// every weight is zero, matching Accumulator.WeightedMAE.
	if k.state.SumWeights != 0 {
		snap.WeightedMAE = k.state.SumWeighted / k.state.SumWeights
	} else {
		snap.WeightedMAE = snap.MeanMAE
	}
	if len(k.ring) > 0 {
		var s float64
		for _, m := range k.ring {
			s += m
		}
		snap.RollingMAE = s / float64(len(k.ring))
	}
	for _, id := range sortedIDs(k.state.PerSensor) {
		s := k.state.PerSensor[id]
		if s.Count > 0 {
			snap.PerSensor[strconv.Itoa(id)] = s.Sum / float64(s.Count)
		}
	}
	return snap
}

func (k *maeKPI) marshal() json.RawMessage {
	st := k.state
	st.Ring = append([]float64(nil), k.ring...)
	st.RingLen = len(k.ring)
	data, _ := json.Marshal(st)
	return data
}

func (k *maeKPI) unmarshal(data json.RawMessage) {
	var st maeState
	if json.Unmarshal(data, &st) != nil {
		return
	}
	if st.PerSensor == nil {
		st.PerSensor = map[int]*sensorMAE{}
	}
	k.ring = append(k.ring[:0], st.Ring...)
	st.Ring = nil
	k.state = st
}

// EventSnapshot reports the event-detection projection.
type EventSnapshot struct {
	// Records is how many records the detector examined.
	Records int64 `json:"records"`
	// LabelDetections counts records whose ground-truth label was
	// positive; LabelTransitions counts per-sensor label changes.
	LabelDetections  int64 `json:"label_detections"`
	LabelTransitions int64 `json:"label_transitions"`
	// ThresholdDetections counts records with any measurement at or
	// above Config.EventThreshold in magnitude.
	ThresholdDetections int64 `json:"threshold_detections"`
}

// eventKPI counts label- and threshold-based detections.
type eventKPI struct {
	threshold float64
	state     eventState
}

type eventState struct {
	Records             int64       `json:"records"`
	LabelDetections     int64       `json:"label_detections"`
	LabelTransitions    int64       `json:"label_transitions"`
	ThresholdDetections int64       `json:"threshold_detections"`
	LastLabel           map[int]int `json:"last_label"`
}

func newEventKPI(cfg Config) *eventKPI {
	return &eventKPI{threshold: cfg.EventThreshold, state: eventState{LastLabel: map[int]int{}}}
}

func (k *eventKPI) apply(sensorID int, rec staging.Record) {
	k.state.Records++
	if rec.Label > 0 {
		k.state.LabelDetections++
	}
	if rec.Label >= 0 {
		if last, ok := k.state.LastLabel[sensorID]; ok && last != rec.Label {
			k.state.LabelTransitions++
		}
		k.state.LastLabel[sensorID] = rec.Label
	}
	if k.threshold > 0 {
		for _, row := range rec.Values {
			for _, v := range row {
				if v >= k.threshold || v <= -k.threshold {
					k.state.ThresholdDetections++
					return
				}
			}
		}
	}
}

func (k *eventKPI) snapshot() EventSnapshot {
	return EventSnapshot{
		Records:             k.state.Records,
		LabelDetections:     k.state.LabelDetections,
		LabelTransitions:    k.state.LabelTransitions,
		ThresholdDetections: k.state.ThresholdDetections,
	}
}

func (k *eventKPI) marshal() json.RawMessage {
	data, _ := json.Marshal(k.state)
	return data
}

func (k *eventKPI) unmarshal(data json.RawMessage) {
	var st eventState
	if json.Unmarshal(data, &st) != nil {
		return
	}
	if st.LastLabel == nil {
		st.LastLabel = map[int]int{}
	}
	k.state = st
}

// PrivacySnapshot reports the live leakage monitor.
type PrivacySnapshot struct {
	// Records is how many watermark-visible records were folded in.
	Records int64 `json:"records"`
	// SizeEntropyBits is the Shannon entropy of the observed (bucketed)
	// message sizes — 0 means perfectly uniform sizes, the AGE goal.
	SizeEntropyBits float64 `json:"size_entropy_bits"`
	// LabelEntropyBits is the entropy of the observed event labels.
	LabelEntropyBits float64 `json:"label_entropy_bits"`
	// NMI is the normalized mutual information between message sizes
	// and labels (Eq. 3) — the paper's leakage figure, live.
	NMI float64 `json:"nmi"`
	// DistinctSizes is how many size buckets have been observed.
	DistinctSizes int `json:"distinct_sizes"`
	// PerSensor reports arrival age per sensor id (JSON-keyed string).
	PerSensor map[string]ArrivalSnapshot `json:"per_sensor"`
}

// ArrivalSnapshot is one sensor's arrival-age figures — the server-side
// age-of-information proxy (the client-side AoI lives in the ingest
// client's metrics).
type ArrivalSnapshot struct {
	Records        int64   `json:"records"`
	MeanInterMS    float64 `json:"mean_interarrival_ms"`
	MaxInterMS     float64 `json:"max_interarrival_ms"`
	StalenessMS    float64 `json:"staleness_ms"`
	LastRecvUnixNS int64   `json:"last_recv_unix_ns"`
}

// privacyKPI maintains count tables over message sizes and labels, so the
// entropy/NMI figures are multiset statistics — independent of the order
// records from different sensors interleave, which (with the watermark
// bound) makes quiesced snapshots deterministic.
type privacyKPI struct {
	bucket int
	state  privacyState
}

type privacyState struct {
	Records int64 `json:"records"`
	// Count tables; the joint is keyed "label,size" for JSON.
	Sizes  map[int]int64    `json:"sizes"`
	Labels map[int]int64    `json:"labels"`
	Joint  map[string]int64 `json:"joint"`
	// Per-sensor arrival accounting (nanoseconds).
	Arrivals map[int]*arrival `json:"arrivals"`
}

type arrival struct {
	Records  int64 `json:"records"`
	LastNano int64 `json:"last_nano"`
	SumInter int64 `json:"sum_inter"`
	MaxInter int64 `json:"max_inter"`
}

func newPrivacyKPI(cfg Config) *privacyKPI {
	return &privacyKPI{
		bucket: cfg.SizeBucket,
		state: privacyState{
			Sizes:    map[int]int64{},
			Labels:   map[int]int64{},
			Joint:    map[string]int64{},
			Arrivals: map[int]*arrival{},
		},
	}
}

func jointKey(label, size int) string {
	return strconv.Itoa(label) + "," + strconv.Itoa(size)
}

func (k *privacyKPI) apply(sensorID int, rec staging.Record) {
	k.state.Records++
	size := rec.WireBytes / k.bucket
	k.state.Sizes[size]++
	if rec.Label >= 0 {
		k.state.Labels[rec.Label]++
		k.state.Joint[jointKey(rec.Label, size)]++
	}
	a := k.state.Arrivals[sensorID]
	if a == nil {
		a = &arrival{LastNano: rec.RecvUnixNano}
		k.state.Arrivals[sensorID] = a
	} else {
		inter := rec.RecvUnixNano - a.LastNano
		if inter < 0 {
			inter = 0
		}
		a.SumInter += inter
		if inter > a.MaxInter {
			a.MaxInter = inter
		}
		a.LastNano = rec.RecvUnixNano
	}
	a.Records++
}

func (k *privacyKPI) snapshot(now int64) PrivacySnapshot {
	snap := PrivacySnapshot{
		Records:          k.state.Records,
		SizeEntropyBits:  stats.EntropyCounts(k.state.Sizes),
		LabelEntropyBits: stats.EntropyCounts(k.state.Labels),
		DistinctSizes:    len(k.state.Sizes),
		PerSensor:        map[string]ArrivalSnapshot{},
	}
	joint := make(map[[2]int]int64, len(k.state.Joint))
	//age:allow detrand each entry lands in a slot derived from its own key; the fold is order-independent
	for key, c := range k.state.Joint {
		var label, size int
		if _, err := fmtSscan(key, &label, &size); err == nil {
			joint[[2]int{label, size}] = c
		}
	}
	snap.NMI = stats.NMICounts(joint)
	for _, id := range sortedIDs(k.state.Arrivals) {
		a := k.state.Arrivals[id]
		as := ArrivalSnapshot{Records: a.Records, LastRecvUnixNS: a.LastNano}
		if a.Records > 1 {
			as.MeanInterMS = float64(a.SumInter) / float64(a.Records-1) / 1e6
		}
		as.MaxInterMS = float64(a.MaxInter) / 1e6
		if now > a.LastNano {
			as.StalenessMS = float64(now-a.LastNano) / 1e6
		}
		snap.PerSensor[strconv.Itoa(id)] = as
	}
	return snap
}

// fmtSscan parses a "label,size" joint key without fmt's reflection.
func fmtSscan(key string, label, size *int) (int, error) {
	for i := 0; i < len(key); i++ {
		if key[i] == ',' {
			l, err := strconv.Atoi(key[:i])
			if err != nil {
				return 0, err
			}
			s, err := strconv.Atoi(key[i+1:])
			if err != nil {
				return 0, err
			}
			*label, *size = l, s
			return 2, nil
		}
	}
	return 0, strconv.ErrSyntax
}

func (k *privacyKPI) marshal() json.RawMessage {
	data, _ := json.Marshal(k.state)
	return data
}

func (k *privacyKPI) unmarshal(data json.RawMessage) {
	var st privacyState
	if json.Unmarshal(data, &st) != nil {
		return
	}
	if st.Sizes == nil {
		st.Sizes = map[int]int64{}
	}
	if st.Labels == nil {
		st.Labels = map[int]int64{}
	}
	if st.Joint == nil {
		st.Joint = map[string]int64{}
	}
	if st.Arrivals == nil {
		st.Arrivals = map[int]*arrival{}
	}
	k.state = st
}
