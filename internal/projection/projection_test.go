package projection

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/fixedpoint"
	"repro/internal/ingest"
	"repro/internal/metrics"
	"repro/internal/reconstruct"
	"repro/internal/staging"
	"repro/internal/stats"
)

// Fleet geometry shared by the loopback tests.
const (
	testT = 20
	testD = 3
)

func testCodecConfig() core.Config {
	return core.Config{T: testT, D: testD, Format: fixedpoint.Format{Width: 16, NonFrac: 3}}
}

// truthWindow synthesizes the deterministic ground-truth window for a
// (sensor, frame) pair — the generative process both the harness's frame
// source and the Truth callback share.
func truthWindow(sensorID, index int) [][]float64 {
	w := make([][]float64, testT)
	for t := range w {
		w[t] = make([]float64, testD)
		for f := range w[t] {
			w[t][f] = 3 * math.Sin(float64(sensorID*31+index*7+t*3+f))
		}
	}
	return w
}

// frameLabel assigns each frame a binary event label.
func frameLabel(sensorID, index int) int {
	return (sensorID + index) % 2
}

// frameBatch subsamples the truth window; the collection count depends on
// the label, so the standard encoder's message sizes leak it — exactly
// what the live NMI monitor must measure.
func frameBatch(sensorID, index int) core.Batch {
	truth := truthWindow(sensorID, index)
	k := 5 + 4*frameLabel(sensorID, index)
	b := core.Batch{Indices: make([]int, k), Values: make([][]float64, k)}
	for i := 0; i < k; i++ {
		idx := i * (testT - 1) / (k - 1)
		b.Indices[i] = idx
		b.Values[i] = truth[idx]
	}
	return b
}

func testTruth(sensorID, index int) ([][]float64, int, bool) {
	return truthWindow(sensorID, index), frameLabel(sensorID, index), true
}

// payloadSource feeds pre-encoded frames to an ingest client.
type payloadSource struct {
	frames [][]byte
	next   int
}

func (s *payloadSource) Total() int            { return len(s.frames) }
func (s *payloadSource) Seek(resume int) error { s.next = resume; return nil }
func (s *payloadSource) Next(ctx context.Context) ([]byte, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	msg := s.frames[s.next]
	s.next++
	return msg, nil
}

// sinkSession accepts every frame.
type sinkSession struct{ total int }

func (s *sinkSession) Total() int                        { return s.total }
func (s *sinkSession) Frame(index int, msg []byte) error { return nil }
func (s *sinkSession) Close(err error)                   {}

// TestLoopbackFleetMatchesOffline is the pipeline's identity check: a real
// ingest fleet streams encoded batches through the tap, and the quiesced
// snapshot's figures must match the offline evaluation — the reconstruct
// accumulator and the slice-based entropy/NMI — computed from the very
// same payloads.
func TestLoopbackFleetMatchesOffline(t *testing.T) {
	const sensors, frames = 6, 10
	codec, err := core.NewStandard(testCodecConfig())
	if err != nil {
		t.Fatal(err)
	}
	eng := New(Config{
		T: testT, D: testD,
		Decode: codec,
		Truth:  testTruth,
		Window: 8,
	})

	srv, err := ingest.NewServer(ingest.ServerConfig{
		Handler: ingest.HandlerFuncs{
			OpenFunc: func(sensorID, delivered int) (ingest.Session, error) {
				return &sinkSession{total: frames}, nil
			},
		},
		IOTimeout: 2 * time.Second,
		Stager:    eng,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve() }()

	var wg sync.WaitGroup
	for id := 0; id < sensors; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			payloads := make([][]byte, frames)
			for i := range payloads {
				p, err := codec.Encode(frameBatch(id, i))
				if err != nil {
					t.Errorf("encode %d/%d: %v", id, i, err)
					return
				}
				payloads[i] = p
			}
			client := ingest.NewClient(ingest.ClientConfig{
				Addr: srv.Addr().String(), SensorID: id, IOTimeout: 2 * time.Second,
			})
			if _, err := client.Run(context.Background(), &payloadSource{frames: payloads}); err != nil {
				t.Errorf("sensor %d: %v", id, err)
			}
		}(id)
	}
	wg.Wait()
	drainCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Drain(drainCtx); err != nil {
		t.Fatal(err)
	}
	<-serveErr
	eng.Close()
	snap := eng.Snapshot()

	// Offline pass over the same frames: decode what was sent, reconstruct,
	// and score — the ground this PR's acceptance criterion stands on.
	var acc reconstruct.Accumulator
	var labels, sizes []int
	detections, transitions := 0, 0
	lastLabel := map[int]int{}
	for id := 0; id < sensors; id++ {
		for i := 0; i < frames; i++ {
			payload, err := codec.Encode(frameBatch(id, i))
			if err != nil {
				t.Fatal(err)
			}
			batch, err := codec.Decode(payload)
			if err != nil {
				t.Fatal(err)
			}
			truth := truthWindow(id, i)
			recon, err := reconstruct.Linear(batch.Indices, batch.Values, testT, testD)
			if err != nil {
				t.Fatal(err)
			}
			mae, err := reconstruct.MAE(recon, truth)
			if err != nil {
				t.Fatal(err)
			}
			acc.Add(mae, reconstruct.SequenceStdDev(truth))
			label := frameLabel(id, i)
			labels = append(labels, label)
			sizes = append(sizes, len(payload))
			if label > 0 {
				detections++
			}
			if last, ok := lastLabel[id]; ok && last != label {
				transitions++
			}
			lastLabel[id] = label
		}
	}

	if snap.MAE.Count != int64(acc.Count()) {
		t.Fatalf("scored %d records, offline %d", snap.MAE.Count, acc.Count())
	}
	if d := math.Abs(snap.MAE.MeanMAE - acc.MAE()); d > 1e-9 {
		t.Errorf("mean MAE %v vs offline %v (|d|=%g)", snap.MAE.MeanMAE, acc.MAE(), d)
	}
	if d := math.Abs(snap.MAE.WeightedMAE - acc.WeightedMAE()); d > 1e-9 {
		t.Errorf("weighted MAE %v vs offline %v (|d|=%g)", snap.MAE.WeightedMAE, acc.WeightedMAE(), d)
	}
	if snap.MAE.RollingMAE <= 0 {
		t.Error("rolling MAE empty after a full fleet")
	}
	if snap.Privacy.Records != int64(len(sizes)) {
		t.Fatalf("privacy saw %d records, want %d", snap.Privacy.Records, len(sizes))
	}
	if d := math.Abs(snap.Privacy.NMI - stats.NMI(labels, sizes)); d > 1e-12 {
		t.Errorf("live NMI %v vs offline %v", snap.Privacy.NMI, stats.NMI(labels, sizes))
	}
	sizeF := make([]int, len(sizes))
	copy(sizeF, sizes)
	if d := math.Abs(snap.Privacy.SizeEntropyBits - stats.Entropy(sizeF)); d > 1e-12 {
		t.Errorf("live size entropy %v vs offline %v", snap.Privacy.SizeEntropyBits, stats.Entropy(sizeF))
	}
	if snap.Events.LabelDetections != int64(detections) || snap.Events.LabelTransitions != int64(transitions) {
		t.Errorf("events = %+v, want %d detections %d transitions", snap.Events, detections, transitions)
	}
	if snap.DecodeErrors != 0 {
		t.Errorf("%d decode errors", snap.DecodeErrors)
	}
	if snap.CoveragePct != 100 {
		t.Errorf("coverage = %v%%", snap.CoveragePct)
	}
	if len(snap.Privacy.PerSensor) != sensors {
		t.Errorf("arrival stats for %d sensors, want %d", len(snap.Privacy.PerSensor), sensors)
	}
}

// feedRecord builds a directly-fed staged record for the restart tests.
func feedRecord(sensorID, index int) staging.Record {
	truth := truthWindow(sensorID, index)
	b := frameBatch(sensorID, index)
	return staging.Record{
		Index:        index,
		WireBytes:    40 + 10*frameLabel(sensorID, index),
		Label:        frameLabel(sensorID, index),
		RecvUnixNano: int64(1e9 + sensorID*1e6 + index*1000),
		Indices:      b.Indices,
		Values:       b.Values,
		Truth:        truth,
	}
}

func feedAll(e *Engine, sensors, from, to int) {
	for id := 0; id < sensors; id++ {
		for i := from; i < to; i++ {
			e.Feed(id, feedRecord(id, i))
		}
	}
}

func snapshotsEquivalent(t *testing.T, got, want Snapshot) {
	t.Helper()
	if got.StagedRecords != want.StagedRecords {
		t.Errorf("staged %d vs %d", got.StagedRecords, want.StagedRecords)
	}
	if got.MAE.Count != want.MAE.Count {
		t.Errorf("mae count %d vs %d", got.MAE.Count, want.MAE.Count)
	}
	for name, pair := range map[string][2]float64{
		"mean_mae":     {got.MAE.MeanMAE, want.MAE.MeanMAE},
		"weighted_mae": {got.MAE.WeightedMAE, want.MAE.WeightedMAE},
		"rolling_mae":  {got.MAE.RollingMAE, want.MAE.RollingMAE},
		"nmi":          {got.Privacy.NMI, want.Privacy.NMI},
		"size_entropy": {got.Privacy.SizeEntropyBits, want.Privacy.SizeEntropyBits},
	} {
		if d := math.Abs(pair[0] - pair[1]); d > 1e-9 {
			t.Errorf("%s: %v vs %v", name, pair[0], pair[1])
		}
	}
	if got.Events != want.Events {
		t.Errorf("events %+v vs %+v", got.Events, want.Events)
	}
	if got.Privacy.Records != want.Privacy.Records {
		t.Errorf("privacy records %d vs %d", got.Privacy.Records, want.Privacy.Records)
	}
}

// TestCheckpointRestartEquivalence runs half a fleet, checkpoints
// mid-stream (through a JSON round-trip, as a crash-restart would see it),
// restores, feeds the remainder, and requires the restored engine's
// quiesced snapshot to match an uninterrupted run's.
func TestCheckpointRestartEquivalence(t *testing.T) {
	const sensors, frames, half = 3, 40, 17
	cfg := Config{T: testT, D: testD, Window: 8, Now: func() int64 { return 5e9 }}

	full := New(cfg)
	feedAll(full, sensors, 0, frames)
	for id := 0; id < sensors; id++ {
		full.CompleteSensor(id)
	}
	full.Close()
	want := full.Snapshot()

	first := New(cfg)
	feedAll(first, sensors, 0, half)
	cp := first.Checkpoint()
	data, err := json.Marshal(cp)
	if err != nil {
		t.Fatal(err)
	}
	var restoredCp Checkpoint
	if err := json.Unmarshal(data, &restoredCp); err != nil {
		t.Fatal(err)
	}
	first.Close()

	second := Restore(cfg, restoredCp)
	for id := 0; id < sensors; id++ {
		resume := restoredCp.Sensors[id].Resume
		for i := resume; i < frames; i++ {
			second.Feed(id, feedRecord(id, i))
		}
		second.CompleteSensor(id)
	}
	second.Close()
	snapshotsEquivalent(t, second.Snapshot(), want)
}

// TestWatermarkBoundsPrivacyProjection pins the monitor's visibility rule:
// with one sensor incomplete at two records, the privacy projection sees
// only two records per sensor, while the per-sensor projections see all.
func TestWatermarkBoundsPrivacyProjection(t *testing.T) {
	e := New(Config{T: testT, D: testD, Now: func() int64 { return 5e9 }})
	for i := 0; i < 5; i++ {
		e.Feed(1, feedRecord(1, i))
	}
	e.CompleteSensor(1)
	for i := 0; i < 2; i++ {
		e.Feed(2, feedRecord(2, i))
	}
	// Sensor 2 never completes: the watermark stays at 2.
	e.Close()
	snap := e.Snapshot()
	if snap.Watermark != 2 {
		t.Fatalf("watermark = %d, want 2", snap.Watermark)
	}
	if snap.Privacy.Records != 4 {
		t.Errorf("privacy records = %d, want 4 (2 visible per sensor)", snap.Privacy.Records)
	}
	if snap.Events.Records != 7 {
		t.Errorf("event records = %d, want 7 (per-sensor workers read to head)", snap.Events.Records)
	}
	if snap.MAE.Count != 7 {
		t.Errorf("mae count = %d, want 7", snap.MAE.Count)
	}
}

// TestPeriodicCheckpointsEmitted checks the CheckpointEvery plumbing.
func TestPeriodicCheckpointsEmitted(t *testing.T) {
	var mu sync.Mutex
	var got []Checkpoint
	e := New(Config{
		T: testT, D: testD,
		CheckpointEvery: 10,
		CheckpointSink: func(cp Checkpoint) {
			mu.Lock()
			got = append(got, cp)
			mu.Unlock()
		},
		Now: func() int64 { return 5e9 },
	})
	feedAll(e, 2, 0, 30)
	e.CompleteSensor(0)
	e.CompleteSensor(1)
	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		n := len(got)
		mu.Unlock()
		if n > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no periodic checkpoint after 60 staged records")
		}
		time.Sleep(time.Millisecond)
	}
	e.Close()
	mu.Lock()
	defer mu.Unlock()
	cp := got[len(got)-1]
	if len(cp.Workers) != 3 {
		t.Fatalf("checkpoint carries %d workers", len(cp.Workers))
	}
	for id := 0; id < 2; id++ {
		if _, ok := cp.Sensors[id]; !ok {
			t.Errorf("checkpoint missing sensor %d", id)
		}
	}
}

// TestSnapshotEndpoint mounts the engine's handler next to /metrics and
// reads a live snapshot over HTTP.
func TestSnapshotEndpoint(t *testing.T) {
	e := New(Config{T: testT, D: testD, Now: func() int64 { return 5e9 }})
	feedAll(e, 2, 0, 4)
	e.CompleteSensor(0)
	e.CompleteSensor(1)
	e.Close()

	reg := metrics.NewRegistry()
	srv, err := reg.ListenAndServeWith("127.0.0.1:0", map[string]http.Handler{
		"/projections": e.Handler(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	for _, path := range []string{"/metrics", "/projections"} {
		resp, err := http.Get(fmt.Sprintf("http://%s%s", srv.Addr, path))
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %d", path, resp.StatusCode)
		}
		if path == "/projections" {
			var snap Snapshot
			if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
				t.Fatalf("decode snapshot: %v", err)
			}
			if snap.StagedRecords != 8 || snap.MAE.Count != 8 {
				t.Errorf("HTTP snapshot = staged %d, mae count %d", snap.StagedRecords, snap.MAE.Count)
			}
		}
		resp.Body.Close()
	}
}

// TestConcurrentFeedSnapshotCheckpoint exercises the engine's concurrency
// contract under -race: parallel feeders, snapshots, and checkpoints.
func TestConcurrentFeedSnapshotCheckpoint(t *testing.T) {
	e := New(Config{T: testT, D: testD, Retain: 16, Now: func() int64 { return 5e9 }})
	var wg sync.WaitGroup
	for id := 0; id < 4; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				e.Feed(id, feedRecord(id, i))
			}
			e.CompleteSensor(id)
		}(id)
	}
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			_ = e.Snapshot()
			_ = e.Checkpoint()
		}
	}()
	time.Sleep(10 * time.Millisecond)
	close(stop)
	wg.Wait()
	e.Close()
	snap := e.Snapshot()
	if snap.StagedRecords != 800 || snap.MAE.Count != 800 {
		t.Fatalf("staged %d, scored %d, want 800/800", snap.StagedRecords, snap.MAE.Count)
	}
}
