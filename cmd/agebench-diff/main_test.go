package main

import (
	"encoding/json"
	"testing"
)

func mustParse(t *testing.T, s string) map[string]any {
	t.Helper()
	var m map[string]any
	if err := json.Unmarshal([]byte(s), &m); err != nil {
		t.Fatal(err)
	}
	return m
}

func defaultLimits() limits { return limits{maxRegress: 0.10, allocTolerance: 0.5} }

const ingestBaseline = `{"frames_per_sec": 100000, "mb_per_sec": 50, "wall_seconds": 1.0}`

func TestIngestWithinBaselinePasses(t *testing.T) {
	cur := mustParse(t, `{"frames_per_sec": 95000, "mb_per_sec": 47}`)
	rep, err := compare("ingest", mustParse(t, ingestBaseline), cur, kinds["ingest"], defaultLimits())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Pass {
		t.Errorf("5%% dip within the 10%% budget should pass: %+v", rep.Results)
	}
}

func TestIngestTenPercentRegressionFails(t *testing.T) {
	// 12% below baseline: past the 10% budget, the gate must go red.
	cur := mustParse(t, `{"frames_per_sec": 88000, "mb_per_sec": 50}`)
	rep, err := compare("ingest", mustParse(t, ingestBaseline), cur, kinds["ingest"], defaultLimits())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Pass {
		t.Fatal("12% throughput regression passed the gate")
	}
	var failed []string
	for _, r := range rep.Results {
		if !r.Pass {
			failed = append(failed, r.Metric)
		}
	}
	if len(failed) != 1 || failed[0] != "frames_per_sec" {
		t.Errorf("failed metrics = %v, want [frames_per_sec]", failed)
	}
}

func TestIngestImprovementPasses(t *testing.T) {
	cur := mustParse(t, `{"frames_per_sec": 300000, "mb_per_sec": 150}`)
	rep, err := compare("ingest", mustParse(t, ingestBaseline), cur, kinds["ingest"], defaultLimits())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Pass {
		t.Errorf("improvement flagged as regression: %+v", rep.Results)
	}
}

const pacedBaseline = `{
	"frames_per_sec": 5000,
	"pacer": {"goodput_pct": 60, "mean_aoi_ms": 0.6}
}`

func TestIngestPaceWithinBaselinePasses(t *testing.T) {
	cur := mustParse(t, `{
		"frames_per_sec": 5200,
		"pacer": {"goodput_pct": 66.7, "mean_aoi_ms": 0.5}
	}`)
	rep, err := compare("ingest-pace", mustParse(t, pacedBaseline), cur, kinds["ingest-pace"], defaultLimits())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Pass {
		t.Errorf("healthy paced run flagged: %+v", rep.Results)
	}
}

func TestIngestPaceGoodputCollapseFails(t *testing.T) {
	// Goodput collapsing means the pacer is releasing mostly dummies —
	// real frames are stalling behind the schedule.
	cur := mustParse(t, `{
		"frames_per_sec": 5200,
		"pacer": {"goodput_pct": 30, "mean_aoi_ms": 0.5}
	}`)
	rep, err := compare("ingest-pace", mustParse(t, pacedBaseline), cur, kinds["ingest-pace"], defaultLimits())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Pass {
		t.Fatal("goodput collapse passed the gate")
	}
}

func TestIngestPaceAoIBlowupFails(t *testing.T) {
	cur := mustParse(t, `{
		"frames_per_sec": 5200,
		"pacer": {"goodput_pct": 66.7, "mean_aoi_ms": 5.0}
	}`)
	rep, err := compare("ingest-pace", mustParse(t, pacedBaseline), cur, kinds["ingest-pace"], defaultLimits())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Pass {
		t.Fatal("age-of-information blowup passed the gate")
	}
}

func TestIngestPaceMissingPacerSectionErrors(t *testing.T) {
	// An unpaced report run through the paced gate must error loudly, not
	// silently pass with the pacer metrics skipped.
	cur := mustParse(t, `{"frames_per_sec": 5200}`)
	if _, err := compare("ingest-pace", mustParse(t, pacedBaseline), cur, kinds["ingest-pace"], defaultLimits()); err == nil {
		t.Fatal("missing pacer section did not error")
	}
}

const projectBaseline = `{
	"frames_per_sec": 40000,
	"mb_per_sec": 20,
	"projection": {"coverage_pct": 95}
}`

func TestIngestProjectWithinBaselinePasses(t *testing.T) {
	cur := mustParse(t, `{
		"frames_per_sec": 39000,
		"mb_per_sec": 19.5,
		"projection": {"coverage_pct": 100}
	}`)
	rep, err := compare("ingest-project", mustParse(t, projectBaseline), cur, kinds["ingest-project"], defaultLimits())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Pass {
		t.Errorf("healthy projected run flagged: %+v", rep.Results)
	}
}

func TestIngestProjectThroughputRegressionFails(t *testing.T) {
	// The projection tap dragging delivery down past the budget is exactly
	// what this gate exists to catch.
	cur := mustParse(t, `{
		"frames_per_sec": 30000,
		"mb_per_sec": 19.5,
		"projection": {"coverage_pct": 100}
	}`)
	rep, err := compare("ingest-project", mustParse(t, projectBaseline), cur, kinds["ingest-project"], defaultLimits())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Pass {
		t.Fatal("25% throughput regression passed the projected gate")
	}
}

func TestIngestProjectCoverageCollapseFails(t *testing.T) {
	cur := mustParse(t, `{
		"frames_per_sec": 41000,
		"mb_per_sec": 20.5,
		"projection": {"coverage_pct": 40}
	}`)
	rep, err := compare("ingest-project", mustParse(t, projectBaseline), cur, kinds["ingest-project"], defaultLimits())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Pass {
		t.Fatal("staged coverage collapse passed the gate")
	}
}

func TestIngestProjectMissingSectionErrors(t *testing.T) {
	cur := mustParse(t, `{"frames_per_sec": 41000, "mb_per_sec": 20.5}`)
	if _, err := compare("ingest-project", mustParse(t, projectBaseline), cur, kinds["ingest-project"], defaultLimits()); err == nil {
		t.Fatal("missing projection section did not error")
	}
}

const sweepBaseline = `{
	"total_seconds": 60,
	"encoder_ns_per_op": {"standard": 2000, "age": 5000},
	"encoder_allocs_per_op": {"standard": 0, "age": 0}
}`

func TestSweepWithinBaselinePasses(t *testing.T) {
	cur := mustParse(t, `{
		"total_seconds": 64,
		"encoder_ns_per_op": {"standard": 2100, "age": 5400},
		"encoder_allocs_per_op": {"standard": 0, "age": 0.1}
	}`)
	rep, err := compare("sweep", mustParse(t, sweepBaseline), cur, kinds["sweep"], defaultLimits())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Pass {
		t.Errorf("within-budget sweep flagged: %+v", rep.Results)
	}
}

func TestSweepLatencyRegressionFails(t *testing.T) {
	// AGE encode 12% slower than baseline.
	cur := mustParse(t, `{
		"total_seconds": 60,
		"encoder_ns_per_op": {"standard": 2000, "age": 5600},
		"encoder_allocs_per_op": {"standard": 0, "age": 0}
	}`)
	rep, err := compare("sweep", mustParse(t, sweepBaseline), cur, kinds["sweep"], defaultLimits())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Pass {
		t.Fatal("12% encoder latency regression passed the gate")
	}
}

func TestSweepAllocIncreaseFails(t *testing.T) {
	// One real allocation per op on a zero-alloc pinned path: red even
	// though every timing metric is fine.
	cur := mustParse(t, `{
		"total_seconds": 55,
		"encoder_ns_per_op": {"standard": 1900, "age": 4800},
		"encoder_allocs_per_op": {"standard": 0, "age": 1}
	}`)
	rep, err := compare("sweep", mustParse(t, sweepBaseline), cur, kinds["sweep"], defaultLimits())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Pass {
		t.Fatal("allocs/op increase passed the gate")
	}
	for _, r := range rep.Results {
		if r.Metric == "encoder_allocs_per_op.age" && r.Pass {
			t.Error("age allocs metric not the one that failed")
		}
	}
}

func TestMissingMetricIsAnError(t *testing.T) {
	// A renamed or dropped field must break the gate loudly, not pass it.
	cur := mustParse(t, `{"frames_per_sec": 100000}`)
	if _, err := compare("ingest", mustParse(t, ingestBaseline), cur, kinds["ingest"], defaultLimits()); err == nil {
		t.Fatal("missing mb_per_sec did not error")
	}
	base := mustParse(t, `{"frames_per_sec": 100000}`)
	cur = mustParse(t, ingestBaseline)
	if _, err := compare("ingest", base, cur, kinds["ingest"], defaultLimits()); err == nil {
		t.Fatal("missing baseline metric did not error")
	}
}

func TestNestedLookup(t *testing.T) {
	m := mustParse(t, `{"a": {"b": 3.5}, "s": "x"}`)
	v, err := lookup(m, "a.b")
	if err != nil || v != 3.5 {
		t.Errorf("lookup(a.b) = %v, %v", v, err)
	}
	if _, err := lookup(m, "a.c"); err == nil {
		t.Error("missing nested key did not error")
	}
	if _, err := lookup(m, "s"); err == nil {
		t.Error("non-numeric leaf did not error")
	}
	if _, err := lookup(m, "s.t"); err == nil {
		t.Error("descending through a string did not error")
	}
}

const clusterBaseline = `{
	"frames_per_sec": 20000,
	"cluster": {"missing_frames": 0, "mismatched_frames": 0}
}`

func TestIngestClusterWithinBaselinePasses(t *testing.T) {
	cur := mustParse(t, `{
		"frames_per_sec": 19000,
		"cluster": {"missing_frames": 0, "mismatched_frames": 0}
	}`)
	rep, err := compare("ingest-cluster", mustParse(t, clusterBaseline), cur, kinds["ingest-cluster"], defaultLimits())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Pass {
		t.Errorf("lossless cluster run within throughput budget should pass: %+v", rep.Results)
	}
}

// TestIngestClusterAnyLossFails pins the zero-tolerance contract: a single
// missing frame against the committed zero baseline goes red, regardless of
// throughput.
func TestIngestClusterAnyLossFails(t *testing.T) {
	cur := mustParse(t, `{
		"frames_per_sec": 40000,
		"cluster": {"missing_frames": 1, "mismatched_frames": 0}
	}`)
	rep, err := compare("ingest-cluster", mustParse(t, clusterBaseline), cur, kinds["ingest-cluster"], defaultLimits())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Pass {
		t.Fatal("a missing frame passed the zero-loss gate")
	}
	for _, r := range rep.Results {
		if r.Metric == "cluster.missing_frames" && r.Pass {
			t.Error("missing_frames row passed despite the loss")
		}
	}
}

func TestIngestClusterCorruptionFails(t *testing.T) {
	cur := mustParse(t, `{
		"frames_per_sec": 20000,
		"cluster": {"missing_frames": 0, "mismatched_frames": 3}
	}`)
	rep, err := compare("ingest-cluster", mustParse(t, clusterBaseline), cur, kinds["ingest-cluster"], defaultLimits())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Pass {
		t.Fatal("mismatched frames passed the gate")
	}
}

func TestIngestClusterMissingSectionErrors(t *testing.T) {
	cur := mustParse(t, `{"frames_per_sec": 20000}`)
	if _, err := compare("ingest-cluster", mustParse(t, clusterBaseline), cur, kinds["ingest-cluster"], defaultLimits()); err == nil {
		t.Fatal("a report without the cluster section must be an error, not a pass")
	}
}
