// Command agebench-diff is the CI perf-regression gate: it compares a
// freshly measured benchmark report (BENCH_ingest.json from cmd/ageload or
// BENCH_sweep.json from cmd/agetables -bench-json) against a committed
// baseline under bench/ and exits nonzero when a gated metric regresses.
//
// Gated metrics per kind:
//
//	ingest          frames_per_sec, mb_per_sec            higher is better
//	ingest-pace     frames_per_sec                        higher is better
//	                pacer.goodput_pct                     higher is better
//	                pacer.mean_aoi_ms                     lower is better
//	ingest-project  frames_per_sec, mb_per_sec            higher is better
//	                projection.coverage_pct               higher is better
//	ingest-cluster  frames_per_sec                        higher is better
//	                cluster.missing_frames                must not increase
//	                cluster.mismatched_frames             must not increase
//	sweep           total_seconds                         lower is better
//	             encoder_ns_per_op.{standard,age}      lower is better
//	             encoder_allocs_per_op.{standard,age}  must not increase
//
// Throughput/latency metrics fail when they regress more than -max-regress
// (default 10%) past the baseline. Allocation metrics fail on any increase
// beyond -alloc-tolerance (default 0.5 allocs/op): the hot paths are pinned
// at zero, so a real leak adds at least one allocation per op, while the
// tolerance absorbs stray background allocations in the sampling window.
//
// Baselines are committed floors, not measurements: they carry deliberate
// headroom below what the reference machine sustains, so routine runner
// noise passes and only a genuine regression trips the gate. See DESIGN.md
// ("Bench baseline policy") for when and how to refresh them.
//
// Usage:
//
//	agebench-diff -kind ingest -baseline bench/BENCH_ingest.baseline.json \
//	    -current BENCH_ingest.json -out benchdiff_ingest.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
)

// direction classifies how a metric is allowed to move.
type direction int

const (
	higherBetter direction = iota // fail when current < baseline*(1-maxRegress)
	lowerBetter                   // fail when current > baseline*(1+maxRegress)
	noIncrease                    // fail when current > baseline + allocTolerance
)

// metricSpec names one gated metric inside a report. Path segments are
// dot-separated JSON object keys.
type metricSpec struct {
	path string
	dir  direction
}

// kinds maps the -kind flag to the metrics gated for that report shape.
var kinds = map[string][]metricSpec{
	"ingest": {
		{"frames_per_sec", higherBetter},
		{"mb_per_sec", higherBetter},
	},
	// A paced ageload run (-pace constant): separate kind because the pacer
	// section only exists in paced reports, and the interesting failure modes
	// differ — a pacer that stalls releases shows up as collapsed goodput or
	// ballooning age of information, not raw throughput.
	"ingest-pace": {
		{"frames_per_sec", higherBetter},
		{"pacer.goodput_pct", higherBetter},
		{"pacer.mean_aoi_ms", lowerBetter},
	},
	// A projected ageload run (-project): the streaming pipeline decodes and
	// stages every delivered frame, so the gate watches both raw throughput
	// (the tap must not drag the delivery path down) and projection coverage
	// (a stalled or lossy stage shows up as staged records falling behind the
	// fleet's assigned frames).
	"ingest-project": {
		{"frames_per_sec", higherBetter},
		{"mb_per_sec", higherBetter},
		{"projection.coverage_pct", higherBetter},
	},
	// A multi-node ageload run (-nodes -kill-node -verify): throughput through
	// the gateway plus the zero-loss acceptance figures. The loss metrics are
	// gated as no-increase against a committed baseline of zero, so any missing
	// or corrupted frame fails CI outright — there is no regression tolerance
	// on correctness.
	"ingest-cluster": {
		{"frames_per_sec", higherBetter},
		{"cluster.missing_frames", noIncrease},
		{"cluster.mismatched_frames", noIncrease},
	},
	"sweep": {
		{"total_seconds", lowerBetter},
		{"encoder_ns_per_op.standard", lowerBetter},
		{"encoder_ns_per_op.age", lowerBetter},
		{"encoder_allocs_per_op.standard", noIncrease},
		{"encoder_allocs_per_op.age", noIncrease},
	},
}

// limits holds the thresholds a comparison runs under.
type limits struct {
	maxRegress     float64 // fractional slack for higher/lower-better metrics
	allocTolerance float64 // absolute slack for no-increase metrics
}

// metricResult is one row of the comparison report.
type metricResult struct {
	Metric   string  `json:"metric"`
	Baseline float64 `json:"baseline"`
	Current  float64 `json:"current"`
	// ChangeFrac is (current-baseline)/baseline; 0 when the baseline is 0.
	ChangeFrac float64 `json:"change_frac"`
	Limit      string  `json:"limit"`
	Pass       bool    `json:"pass"`
}

// diffReport is the artifact written by -out: every gated metric with its
// verdict, so a red CI run shows exactly what moved without re-running.
type diffReport struct {
	Kind         string         `json:"kind"`
	BaselineFile string         `json:"baseline_file"`
	CurrentFile  string         `json:"current_file"`
	MaxRegress   float64        `json:"max_regress"`
	Results      []metricResult `json:"results"`
	Pass         bool           `json:"pass"`
}

func main() {
	log.SetFlags(0)
	var (
		kind     = flag.String("kind", "", "report shape: ingest or sweep")
		baseline = flag.String("baseline", "", "committed baseline JSON file")
		current  = flag.String("current", "", "freshly measured JSON file")
		out      = flag.String("out", "", "write the comparison report to this JSON file")
		maxReg   = flag.Float64("max-regress", 0.10, "maximum fractional regression for throughput/latency metrics")
		allocTol = flag.Float64("alloc-tolerance", 0.5, "maximum absolute allocs/op increase")
	)
	flag.Parse()

	specs, ok := kinds[*kind]
	if !ok {
		log.Fatalf("agebench-diff: -kind %q must be one of: ingest, ingest-pace, ingest-project, ingest-cluster, sweep", *kind)
	}
	if *baseline == "" || *current == "" {
		log.Fatal("agebench-diff: -baseline and -current are required")
	}
	base, err := loadReport(*baseline)
	if err != nil {
		log.Fatalf("agebench-diff: baseline: %v", err)
	}
	cur, err := loadReport(*current)
	if err != nil {
		log.Fatalf("agebench-diff: current: %v", err)
	}

	rep, err := compare(*kind, base, cur, specs, limits{maxRegress: *maxReg, allocTolerance: *allocTol})
	if err != nil {
		log.Fatalf("agebench-diff: %v", err)
	}
	rep.BaselineFile = *baseline
	rep.CurrentFile = *current

	for _, r := range rep.Results {
		verdict := "ok"
		if !r.Pass {
			verdict = "REGRESSION"
		}
		log.Printf("%-36s baseline %12.3f  current %12.3f  (%+.1f%%)  limit %-22s %s",
			r.Metric, r.Baseline, r.Current, 100*r.ChangeFrac, r.Limit, verdict)
	}
	if *out != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			log.Fatalf("agebench-diff: marshal report: %v", err)
		}
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			log.Fatalf("agebench-diff: write report: %v", err)
		}
	}
	if !rep.Pass {
		log.Fatalf("agebench-diff: %s regressed past the committed baseline %s", *kind, *baseline)
	}
	log.Printf("agebench-diff: %s within baseline %s", *kind, *baseline)
}

// loadReport parses an arbitrary JSON object for metric extraction.
func loadReport(path string) (map[string]any, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m map[string]any
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return m, nil
}

// lookup walks a dot-separated path through nested JSON objects and returns
// the numeric leaf.
func lookup(m map[string]any, path string) (float64, error) {
	segs := strings.Split(path, ".")
	var cur any = m
	for i, seg := range segs {
		obj, ok := cur.(map[string]any)
		if !ok {
			return 0, fmt.Errorf("%s: %q is not an object", path, strings.Join(segs[:i], "."))
		}
		cur, ok = obj[seg]
		if !ok {
			return 0, fmt.Errorf("%s: missing key %q", path, seg)
		}
	}
	v, ok := cur.(float64)
	if !ok {
		return 0, fmt.Errorf("%s: not a number (%T)", path, cur)
	}
	return v, nil
}

// compare evaluates every gated metric and returns the full report. A missing
// or non-numeric metric in either file is an error, not a pass: a silently
// renamed field must never disable the gate.
func compare(kind string, base, cur map[string]any, specs []metricSpec, lim limits) (*diffReport, error) {
	rep := &diffReport{Kind: kind, MaxRegress: lim.maxRegress, Pass: true}
	for _, spec := range specs {
		b, err := lookup(base, spec.path)
		if err != nil {
			return nil, fmt.Errorf("baseline: %w", err)
		}
		c, err := lookup(cur, spec.path)
		if err != nil {
			return nil, fmt.Errorf("current: %w", err)
		}
		r := metricResult{Metric: spec.path, Baseline: b, Current: c}
		if b != 0 {
			r.ChangeFrac = (c - b) / b
		}
		switch spec.dir {
		case higherBetter:
			r.Limit = fmt.Sprintf(">= %.3f", b*(1-lim.maxRegress))
			r.Pass = c >= b*(1-lim.maxRegress)
		case lowerBetter:
			r.Limit = fmt.Sprintf("<= %.3f", b*(1+lim.maxRegress))
			r.Pass = c <= b*(1+lim.maxRegress)
		case noIncrease:
			r.Limit = fmt.Sprintf("<= %.3f", b+lim.allocTolerance)
			r.Pass = c <= b+lim.allocTolerance
		}
		if !r.Pass {
			rep.Pass = false
		}
		rep.Results = append(rep.Results, r)
	}
	return rep, nil
}
