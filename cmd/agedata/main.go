// Command agedata inspects and exports the evaluation workloads.
//
// Usage:
//
//	agedata -list                                 # Table 3 summary
//	agedata -dataset epilepsy -stats              # per-event statistics
//	agedata -dataset epilepsy -export ep.csv      # CSV export
//	agedata -dataset epilepsy -preview 3          # print a sequence
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/dataset"
	"repro/internal/stats"
)

func main() {
	log.SetFlags(0)
	var (
		list    = flag.Bool("list", false, "list datasets with their Table 3 shapes")
		dsName  = flag.String("dataset", "", "dataset to operate on")
		maxSeq  = flag.Int("max-seq", 96, "sequences to generate (0 = full size)")
		seed    = flag.Int64("seed", 7, "generation seed")
		doStats = flag.Bool("stats", false, "print per-event statistics")
		export  = flag.String("export", "", "write the dataset to this CSV file")
		preview = flag.Int("preview", -1, "print the values of sequence N")
	)
	flag.Parse()

	if *list {
		fmt.Printf("%-12s %8s %8s %6s %7s %8s %8s\n", "dataset", "seqs", "seqlen", "feat", "labels", "format", "range")
		for _, n := range dataset.Names() {
			m, err := dataset.MetaFor(n)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-12s %8d %8d %6d %7d %8v %8.1f\n",
				n, m.NumSeq, m.SeqLen, m.NumFeatures, m.NumLabels, m.Format, m.Range)
		}
		return
	}
	if *dsName == "" {
		flag.Usage()
		os.Exit(2)
	}
	d, err := dataset.Load(*dsName, dataset.Options{Seed: *seed, MaxSequences: *maxSeq})
	if err != nil {
		log.Fatal(err)
	}

	if *doStats {
		events := dataset.LabelNames(*dsName)
		byLabel := d.ByLabel()
		fmt.Printf("%s: %d sequences of %d x %d\n", *dsName, len(d.Sequences), d.Meta.SeqLen, d.Meta.NumFeatures)
		fmt.Printf("%-14s %6s %10s %10s %10s %10s\n", "event", "n", "mean", "std", "min", "max")
		for l := 0; l < d.Meta.NumLabels; l++ {
			var flat []float64
			for _, si := range byLabel[l] {
				flat = append(flat, d.Sequences[si].Flatten()...)
			}
			name := fmt.Sprintf("label %d", l)
			if l < len(events) {
				name = events[l]
			}
			fmt.Printf("%-14s %6d %10.3f %10.3f %10.3f %10.3f\n",
				name, len(byLabel[l]), stats.Mean(flat), stats.PopStdDev(flat), stats.Min(flat), stats.Max(flat))
		}
	}

	if *export != "" {
		f, err := os.Create(*export)
		if err != nil {
			log.Fatal(err)
		}
		if err := d.WriteCSV(f); err != nil {
			f.Close()
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %d sequences to %s\n", len(d.Sequences), *export)
	}

	if *preview >= 0 {
		if *preview >= len(d.Sequences) {
			log.Fatalf("sequence %d out of range (have %d)", *preview, len(d.Sequences))
		}
		s := d.Sequences[*preview]
		fmt.Printf("sequence %d, label %d:\n", *preview, s.Label)
		for t, row := range s.Values {
			fmt.Printf("%5d:", t)
			for _, v := range row {
				fmt.Printf(" %9.4f", v)
			}
			fmt.Println()
		}
	}
}
