package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// chdirTestdata moves into the testdata module (one deliberate detrand
// finding) for the duration of the test.
func chdirTestdata(t *testing.T) {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(filepath.Join(wd, "testdata", "src", "m")); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := os.Chdir(wd); err != nil {
			t.Fatal(err)
		}
	})
}

func runVet(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

func TestRunFilterExactName(t *testing.T) {
	chdirTestdata(t)
	code, out, _ := runVet(t, "-run", "detrand", "./...")
	if code != 1 {
		t.Fatalf("exit = %d, want 1 (the seeded finding)\nstdout:\n%s", code, out)
	}
	if !strings.Contains(out, "wall-clock read") {
		t.Fatalf("missing detrand diagnostic in output:\n%s", out)
	}
}

func TestRunFilterCaseInsensitive(t *testing.T) {
	chdirTestdata(t)
	code, out, _ := runVet(t, "-run", "DetRand", "./...")
	if code != 1 {
		t.Fatalf("exit = %d, want 1: -run must match case-insensitively\nstdout:\n%s", code, out)
	}
	if !strings.Contains(out, "wall-clock read") {
		t.Fatalf("missing detrand diagnostic in output:\n%s", out)
	}
}

func TestRunFilterUnknownNameErrors(t *testing.T) {
	chdirTestdata(t)
	code, _, errOut := runVet(t, "-run", "nosuchanalyzer", "./...")
	if code != 2 {
		t.Fatalf("exit = %d, want 2: unknown -run names must error, not silently run nothing", code)
	}
	if !strings.Contains(errOut, "unknown analyzer") || !strings.Contains(errOut, "nosuchanalyzer") {
		t.Fatalf("stderr should name the unknown analyzer:\n%s", errOut)
	}
	if !strings.Contains(errOut, "detrand") {
		t.Fatalf("stderr should list the known analyzers:\n%s", errOut)
	}
}

func TestRunFilterSkipsEmptySegments(t *testing.T) {
	chdirTestdata(t)
	code, _, errOut := runVet(t, "-run", "detrand, ,", "./...")
	if code != 1 {
		t.Fatalf("exit = %d, want 1: empty -run segments are skipped\nstderr:\n%s", code, errOut)
	}
}

func TestRunFilterAllEmptyErrors(t *testing.T) {
	chdirTestdata(t)
	code, _, errOut := runVet(t, "-run", " ,", "./...")
	if code != 2 {
		t.Fatalf("exit = %d, want 2: -run selecting nothing is an error\nstderr:\n%s", code, errOut)
	}
}

func TestBaselineRatchet(t *testing.T) {
	chdirTestdata(t)
	base := filepath.Join(t.TempDir(), "baseline.json")

	// -write-baseline captures the current finding and exits 0.
	code, _, errOut := runVet(t, "-baseline", base, "-write-baseline", "-run", "detrand", "./...")
	if code != 0 {
		t.Fatalf("write-baseline exit = %d, want 0\nstderr:\n%s", code, errOut)
	}
	data, err := os.ReadFile(base)
	if err != nil {
		t.Fatal(err)
	}
	var entries []map[string]string
	if err := json.Unmarshal(data, &entries); err != nil {
		t.Fatalf("baseline is not JSON: %v\n%s", err, data)
	}
	if len(entries) != 1 || entries[0]["analyzer"] != "detrand" {
		t.Fatalf("baseline = %v, want one detrand entry", entries)
	}
	if _, hasLine := entries[0]["line"]; hasLine {
		t.Fatalf("baseline entries must not carry line numbers: %v", entries[0])
	}

	// Same findings against the baseline: clean.
	code, out, errOut := runVet(t, "-baseline", base, "-run", "detrand", "./...")
	if code != 0 {
		t.Fatalf("baselined run exit = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, out, errOut)
	}

	// A different analyzer selection reports nothing, so the entry is
	// stale: the ratchet forces a -write-baseline.
	code, out, errOut = runVet(t, "-baseline", base, "-run", "sentinelerr", "./...")
	if code != 1 {
		t.Fatalf("stale-baseline run exit = %d, want 1\nstdout:\n%s", code, out)
	}
	if !strings.Contains(out, "stale baseline entry") || !strings.Contains(errOut, "-write-baseline") {
		t.Fatalf("stale entries must be reported with ratchet advice\nstdout:\n%s\nstderr:\n%s", out, errOut)
	}
}

func TestBaselineNewFindingFails(t *testing.T) {
	chdirTestdata(t)
	base := filepath.Join(t.TempDir(), "baseline.json")
	if err := os.WriteFile(base, []byte("[]\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	code, out, errOut := runVet(t, "-baseline", base, "-run", "detrand", "./...")
	if code != 1 {
		t.Fatalf("exit = %d, want 1: findings outside the baseline must fail", code)
	}
	if !strings.Contains(out, "wall-clock read") || !strings.Contains(errOut, "new finding") {
		t.Fatalf("new findings must be printed and counted\nstdout:\n%s\nstderr:\n%s", out, errOut)
	}
}

func TestWriteBaselineRequiresPath(t *testing.T) {
	code, _, errOut := runVet(t, "-write-baseline")
	if code != 2 || !strings.Contains(errOut, "-write-baseline requires -baseline") {
		t.Fatalf("exit = %d, stderr = %q; want usage error", code, errOut)
	}
}

func TestJSONWithBaseline(t *testing.T) {
	chdirTestdata(t)
	base := filepath.Join(t.TempDir(), "baseline.json")
	code, _, _ := runVet(t, "-baseline", base, "-write-baseline", "-run", "detrand", "./...")
	if code != 0 {
		t.Fatalf("write-baseline exit = %d, want 0", code)
	}
	// -json still emits the full artifact while the baseline gates the
	// exit code.
	code, out, _ := runVet(t, "-json", "-baseline", base, "-run", "detrand", "./...")
	if code != 0 {
		t.Fatalf("exit = %d, want 0 with matching baseline", code)
	}
	var diags []map[string]any
	if idx := strings.Index(out, "["); idx < 0 {
		t.Fatalf("no JSON array in stdout:\n%s", out)
	} else if err := json.Unmarshal([]byte(out[idx:]), &diags); err != nil {
		t.Fatalf("stdout is not a JSON diagnostic array: %v\n%s", err, out)
	}
	if len(diags) != 1 || diags[0]["analyzer"] != "detrand" {
		t.Fatalf("json artifact = %v, want the one detrand diagnostic", diags)
	}
}
