// Command agevet is the repo's multichecker: it runs every project-specific
// analyzer (internal/analysis/...) over the packages matching its arguments
// and fails if any invariant is violated. CI runs it as a blocking step:
//
//	go run ./cmd/agevet -baseline bench/agevet_baseline.json ./...
//
// Flags:
//
//	-json       emit diagnostics as a JSON array (file/line/col/analyzer/
//	            message) for CI artifact upload
//	-run a,b    run only the named analyzers (case-insensitive; unknown
//	            names are an error)
//	-list       print the analyzers and their invariants, then exit
//	-tests=false  skip _test.go files
//	-baseline f   gate against a committed findings baseline: findings not
//	              in f fail, baseline entries with no matching finding are
//	              stale and also fail (ratchet the file down)
//	-write-baseline  rewrite the -baseline file from the current findings
//
// The baseline is a findings ratchet: triaged findings are committed once,
// new findings always fail, and fixing an old finding forces a
// -write-baseline commit so the file only ever shrinks. Entries are keyed
// by (file, analyzer, message) without line numbers, so unrelated edits to
// a file don't churn the baseline.
//
// Exit status: 0 clean, 1 findings, 2 usage or load failure — the go vet
// convention.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/atomicmix"
	"repro/internal/analysis/ctxdeadline"
	"repro/internal/analysis/detrand"
	"repro/internal/analysis/goroutineleak"
	"repro/internal/analysis/hotpathalloc"
	"repro/internal/analysis/leaktaint"
	"repro/internal/analysis/load"
	"repro/internal/analysis/lockedblock"
	"repro/internal/analysis/sentinelerr"
)

// all returns the full analyzer suite in stable order.
func all() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		hotpathalloc.Analyzer,
		detrand.Analyzer,
		lockedblock.Analyzer,
		sentinelerr.Analyzer,
		ctxdeadline.Analyzer,
		leaktaint.Analyzer,
		goroutineleak.Analyzer,
		atomicmix.Analyzer,
	}
}

// jsonDiag is the machine-readable diagnostic shape CI uploads.
type jsonDiag struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// baselineEntry is one triaged finding in the ratchet file. No line
// numbers: unrelated edits to a file must not churn the baseline.
type baselineEntry struct {
	File     string `json:"file"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func (e baselineEntry) key() string {
	return e.File + "\x00" + e.Analyzer + "\x00" + e.Message
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("agevet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit diagnostics as JSON")
	runList := fs.String("run", "", "comma-separated analyzer names to run (default: all)")
	list := fs.Bool("list", false, "list analyzers and exit")
	tests := fs.Bool("tests", true, "also analyze _test.go files")
	baselinePath := fs.String("baseline", "", "gate findings against this baseline file")
	writeBaseline := fs.Bool("write-baseline", false, "rewrite the -baseline file from current findings")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *writeBaseline && *baselinePath == "" {
		fmt.Fprintln(stderr, "agevet: -write-baseline requires -baseline")
		return 2
	}

	analyzers := all()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *runList != "" {
		filtered, err := selectAnalyzers(analyzers, *runList)
		if err != nil {
			fmt.Fprintf(stderr, "agevet: %v\n", err)
			return 2
		}
		analyzers = filtered
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(stderr, "agevet: %v\n", err)
		return 2
	}
	units, err := load.Load(wd, *tests, patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "agevet: %v\n", err)
		return 2
	}
	diags, err := analysis.Run(units, analyzers)
	if err != nil {
		fmt.Fprintf(stderr, "agevet: %v\n", err)
		return 2
	}

	entries := make([]baselineEntry, 0, len(diags))
	for _, d := range diags {
		entries = append(entries, baselineEntry{
			File:     relPath(wd, d.Pos.Filename),
			Analyzer: d.Analyzer,
			Message:  d.Message,
		})
	}

	if *jsonOut {
		out := make([]jsonDiag, 0, len(diags))
		for i, d := range diags {
			out = append(out, jsonDiag{
				File:     entries[i].File,
				Line:     d.Pos.Line,
				Col:      d.Pos.Column,
				Analyzer: d.Analyzer,
				Message:  d.Message,
			})
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(stderr, "agevet: %v\n", err)
			return 2
		}
	}

	if *writeBaseline {
		if err := saveBaseline(*baselinePath, entries); err != nil {
			fmt.Fprintf(stderr, "agevet: %v\n", err)
			return 2
		}
		fmt.Fprintf(stderr, "agevet: wrote %d finding(s) to %s\n", len(entries), *baselinePath)
		return 0
	}

	if *baselinePath != "" {
		return gate(stdout, stderr, *baselinePath, diags, entries)
	}

	if !*jsonOut {
		for _, d := range diags {
			fmt.Fprintf(stdout, "%s:%d:%d: %s: %s\n",
				relPath(wd, d.Pos.Filename), d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
		}
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// selectAnalyzers filters the suite by a comma-separated name list,
// matching case-insensitively and rejecting unknown names so a typo can't
// silently run nothing.
func selectAnalyzers(analyzers []*analysis.Analyzer, runList string) ([]*analysis.Analyzer, error) {
	var filtered []*analysis.Analyzer
	seen := map[string]bool{}
	for _, name := range strings.Split(runList, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		found := false
		for _, a := range analyzers {
			if strings.EqualFold(a.Name, name) {
				if !seen[a.Name] {
					seen[a.Name] = true
					filtered = append(filtered, a)
				}
				found = true
				break
			}
		}
		if !found {
			known := make([]string, 0, len(analyzers))
			for _, a := range analyzers {
				known = append(known, a.Name)
			}
			return nil, fmt.Errorf("unknown analyzer %q (known: %s)", name, strings.Join(known, ", "))
		}
	}
	if len(filtered) == 0 {
		return nil, fmt.Errorf("-run %q selects no analyzers", runList)
	}
	return filtered, nil
}

// gate compares findings against the committed baseline as a multiset.
// Findings without a baseline entry are new and fail; baseline entries
// without a finding are stale and fail until -write-baseline ratchets the
// file down.
func gate(stdout, stderr io.Writer, path string, diags []analysis.Diagnostic, entries []baselineEntry) int {
	base, err := loadBaseline(path)
	if err != nil {
		fmt.Fprintf(stderr, "agevet: %v\n", err)
		return 2
	}
	budget := map[string]int{}
	for _, e := range base {
		budget[e.key()]++
	}
	bad := 0
	for i, e := range entries {
		if budget[e.key()] > 0 {
			budget[e.key()]--
			continue
		}
		d := diags[i]
		fmt.Fprintf(stdout, "%s:%d:%d: %s: %s\n", e.File, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
		bad++
	}
	stale := 0
	for _, e := range base {
		if budget[e.key()] > 0 {
			budget[e.key()]--
			fmt.Fprintf(stdout, "stale baseline entry (finding no longer reported): %s: %s: %s\n", e.File, e.Analyzer, e.Message)
			stale++
		}
	}
	switch {
	case bad > 0 && stale > 0:
		fmt.Fprintf(stderr, "agevet: %d new finding(s), %d stale baseline entr(ies); fix the new findings and ratchet with -write-baseline\n", bad, stale)
	case bad > 0:
		fmt.Fprintf(stderr, "agevet: %d new finding(s) not in %s\n", bad, path)
	case stale > 0:
		fmt.Fprintf(stderr, "agevet: %d stale baseline entr(ies); ratchet down with -write-baseline -baseline %s\n", stale, path)
	}
	if bad > 0 || stale > 0 {
		return 1
	}
	return 0
}

func loadBaseline(path string) ([]baselineEntry, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("reading baseline: %w", err)
	}
	var entries []baselineEntry
	if err := json.Unmarshal(data, &entries); err != nil {
		return nil, fmt.Errorf("parsing baseline %s: %w", path, err)
	}
	return entries, nil
}

func saveBaseline(path string, entries []baselineEntry) error {
	sorted := make([]baselineEntry, 0, len(entries)) // non-nil: an empty ratchet is [], not null
	sorted = append(sorted, entries...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].key() < sorted[j].key() })
	data, err := json.MarshalIndent(sorted, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// relPath shortens absolute diagnostic paths to repo-relative ones.
func relPath(wd, path string) string {
	if strings.HasPrefix(path, wd+string(os.PathSeparator)) {
		return path[len(wd)+1:]
	}
	return path
}
