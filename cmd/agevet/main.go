// Command agevet is the repo's multichecker: it runs every project-specific
// analyzer (internal/analysis/...) over the packages matching its arguments
// and fails if any invariant is violated. CI runs it as a blocking step:
//
//	go run ./cmd/agevet ./...
//
// Flags:
//
//	-json       emit diagnostics as a JSON array (file/line/col/analyzer/
//	            message) for CI artifact upload
//	-run a,b    run only the named analyzers
//	-list       print the analyzers and their invariants, then exit
//	-tests=false  skip _test.go files
//
// Exit status: 0 clean, 1 findings, 2 usage or load failure — the go vet
// convention.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/ctxdeadline"
	"repro/internal/analysis/detrand"
	"repro/internal/analysis/hotpathalloc"
	"repro/internal/analysis/load"
	"repro/internal/analysis/lockedblock"
	"repro/internal/analysis/sentinelerr"
)

// all returns the full analyzer suite in stable order.
func all() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		hotpathalloc.Analyzer,
		detrand.Analyzer,
		lockedblock.Analyzer,
		sentinelerr.Analyzer,
		ctxdeadline.Analyzer,
	}
}

// jsonDiag is the machine-readable diagnostic shape CI uploads.
type jsonDiag struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("agevet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit diagnostics as JSON")
	runList := fs.String("run", "", "comma-separated analyzer names to run (default: all)")
	list := fs.Bool("list", false, "list analyzers and exit")
	tests := fs.Bool("tests", true, "also analyze _test.go files")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers := all()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *runList != "" {
		keep := map[string]bool{}
		for _, name := range strings.Split(*runList, ",") {
			keep[strings.TrimSpace(name)] = true
		}
		var filtered []*analysis.Analyzer
		for _, a := range analyzers {
			if keep[a.Name] {
				filtered = append(filtered, a)
				delete(keep, a.Name)
			}
		}
		if len(keep) > 0 {
			for name := range keep {
				fmt.Fprintf(stderr, "agevet: unknown analyzer %q\n", name)
			}
			return 2
		}
		analyzers = filtered
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(stderr, "agevet: %v\n", err)
		return 2
	}
	units, err := load.Load(wd, *tests, patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "agevet: %v\n", err)
		return 2
	}
	diags, err := analysis.Run(units, analyzers)
	if err != nil {
		fmt.Fprintf(stderr, "agevet: %v\n", err)
		return 2
	}

	if *jsonOut {
		out := make([]jsonDiag, 0, len(diags))
		for _, d := range diags {
			out = append(out, jsonDiag{
				File:     relPath(wd, d.Pos.Filename),
				Line:     d.Pos.Line,
				Col:      d.Pos.Column,
				Analyzer: d.Analyzer,
				Message:  d.Message,
			})
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(stderr, "agevet: %v\n", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintf(stdout, "%s:%d:%d: %s: %s\n",
				relPath(wd, d.Pos.Filename), d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
		}
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// relPath shortens absolute diagnostic paths to repo-relative ones.
func relPath(wd, path string) string {
	if strings.HasPrefix(path, wd+string(os.PathSeparator)) {
		return path[len(wd)+1:]
	}
	return path
}
