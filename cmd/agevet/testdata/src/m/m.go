// The one deliberate finding the agevet CLI tests pivot on: a wall-clock
// read inside //age:deterministic scope (a detrand diagnostic).

//age:deterministic
package m

import "time"

// Stamp breaks the determinism contract on purpose.
func Stamp() int64 {
	return time.Now().UnixNano()
}
