module m

go 1.22
