// Command agetables regenerates the paper's evaluation tables and figures
// (§5). Each experiment prints rows shaped like the published ones so they
// can be compared side by side; EXPERIMENTS.md records that comparison.
//
// Usage:
//
//	agetables -exp all                 # everything (minutes)
//	agetables -exp table4 -datasets epilepsy,activity
//	agetables -exp figure6 -max-seq 64 -attack-samples 400
//
// Experiments: table1, table4, table5, table6, table7, table8, table9,
// table10, figure1, figure5, figure6, figure7, sec58, all — plus the
// extensions utility (event-detection accuracy through each pipeline),
// multievent (batches spanning two events, §3.1), ablation (w_min and G_0
// sensitivity, §4.2-§4.3), compression (§7's lossless-compression leak), and
// buffered (§7's buffering alternative and its latency/drop costs).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	log.SetFlags(0)
	var (
		exp      = flag.String("exp", "all", "experiment to run (table1..table10, figure1..figure7, sec58, all)")
		datasets = flag.String("datasets", "", "comma-separated dataset subset (default: all nine)")
		maxSeq   = flag.Int("max-seq", 96, "sequences per dataset (0 = full published size)")
		samples  = flag.Int("attack-samples", 600, "attack windows per evaluation")
		perms    = flag.Int("perms", 10000, "permutations for NMI significance")
		seed     = flag.Int64("seed", 7, "random seed")
	)
	flag.Parse()

	cfg := experiments.DefaultConfig()
	cfg.MaxSequences = *maxSeq
	cfg.AttackSamples = *samples
	cfg.Permutations = *perms
	cfg.Seed = *seed

	var names []string
	if *datasets != "" {
		names = strings.Split(*datasets, ",")
	}

	want := func(id string) bool { return *exp == "all" || *exp == id }
	ran := false
	start := time.Now()

	if want("table1") {
		run("Table 1", func() (fmt.Stringer, error) { return experiments.Table1(cfg) })
		ran = true
	}
	if want("figure1") {
		run("Figure 1", func() (fmt.Stringer, error) { return experiments.Figure1(cfg) })
		ran = true
	}
	if want("table4") || want("table5") {
		res, err := experiments.Table45(cfg, names)
		if err != nil {
			log.Fatalf("tables 4/5: %v", err)
		}
		if want("table4") {
			fmt.Println(res.Table4String())
		}
		if want("table5") {
			fmt.Println(res.Table5String())
		}
		ran = true
	}
	if want("figure5") {
		run("Figure 5", func() (fmt.Stringer, error) { return experiments.Figure5(cfg) })
		ran = true
	}
	if want("table6") {
		run("Table 6", func() (fmt.Stringer, error) { return experiments.Table6(cfg, names) })
		ran = true
	}
	if want("figure6") {
		run("Figure 6", func() (fmt.Stringer, error) { return experiments.Figure6(cfg, names) })
		ran = true
	}
	if want("figure7") {
		run("Figure 7", func() (fmt.Stringer, error) { return experiments.Figure7(cfg) })
		ran = true
	}
	if want("table7") {
		rows, err := experiments.Table7(cfg, names)
		if err != nil {
			log.Fatalf("table 7: %v", err)
		}
		fmt.Println(experiments.Table7String(rows))
		ran = true
	}
	if want("table8") {
		run("Table 8", func() (fmt.Stringer, error) { return experiments.Table8(cfg, names) })
		ran = true
	}
	if want("table9") || want("table10") {
		for _, name := range []string{"activity", "tiselac"} {
			res, err := experiments.TableMCU(cfg, name)
			if err != nil {
				log.Fatalf("tables 9/10 (%s): %v", name, err)
			}
			if want("table9") {
				fmt.Println(res.Table9String())
			}
			if want("table10") {
				fmt.Println(res.Table10String())
			}
		}
		ran = true
	}
	if want("sec58") {
		run("Sec 5.8", func() (fmt.Stringer, error) { return experiments.Sec58(cfg) })
		ran = true
	}
	if want("utility") {
		run("Inference utility", func() (fmt.Stringer, error) { return experiments.InferenceUtility(cfg, "epilepsy", 0.7) })
		ran = true
	}
	if want("multievent") {
		run("Multi-event batches", func() (fmt.Stringer, error) { return experiments.MultiEvent(cfg) })
		ran = true
	}
	if want("ablation") {
		run("G0 ablation", func() (fmt.Stringer, error) { return experiments.AblationG0(cfg, "epilepsy") })
		run("w_min ablation", func() (fmt.Stringer, error) { return experiments.AblationWMin(cfg, "epilepsy") })
		ran = true
	}
	if want("compression") {
		run("Compression leakage", func() (fmt.Stringer, error) { return experiments.CompressionLeakage(cfg, "epilepsy") })
		ran = true
	}
	if want("buffered") {
		run("Buffering defense", func() (fmt.Stringer, error) { return experiments.BufferedDefense(cfg, "epilepsy") })
		ran = true
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		flag.Usage()
		os.Exit(2)
	}
	fmt.Printf("done in %s\n", time.Since(start).Round(time.Millisecond))
}

func run(title string, f func() (fmt.Stringer, error)) {
	res, err := f()
	if err != nil {
		log.Fatalf("%s: %v", title, err)
	}
	fmt.Println(res.String())
}
