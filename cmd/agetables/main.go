// Command agetables regenerates the paper's evaluation tables and figures
// (§5). Each experiment prints rows shaped like the published ones so they
// can be compared side by side; EXPERIMENTS.md records that comparison.
//
// Usage:
//
//	agetables -exp all                 # everything (minutes)
//	agetables -exp all -workers 8      # parallel sweep, identical output
//	agetables -exp table4 -datasets epilepsy,activity
//	agetables -exp figure6 -max-seq 64 -attack-samples 400
//
// Experiments: table1, table4, table5, table6, table7, table8, table9,
// table10, figure1, figure5, figure6, figure7, sec58, all — plus the
// extensions utility (event-detection accuracy through each pipeline),
// multievent (batches spanning two events, §3.1), ablation (w_min and G_0
// sensitivity, §4.2-§4.3), compression (§7's lossless-compression leak), and
// buffered (§7's buffering alternative and its latency/drop costs).
//
// Output is byte-identical for any -workers value at the same seed: every
// cell's RNG derives from the seed and the cell's name, and results merge in
// canonical cell order (see internal/experiments/runner.go).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"repro/internal/experiments"
	"repro/internal/metrics"
)

// benchReport is the -bench-json payload: per-experiment wall-clock plus the
// Sec 5.8 encoder timings, for CI trend tracking.
type benchReport struct {
	Workers            int                `json:"workers"`
	GOMAXPROCS         int                `json:"gomaxprocs"`
	ExperimentSeconds  map[string]float64 `json:"experiment_seconds"`
	TotalSeconds       float64            `json:"total_seconds"`
	EncoderNsPerOp     map[string]float64 `json:"encoder_ns_per_op,omitempty"`
	EncoderAllocsPerOp map[string]float64 `json:"encoder_allocs_per_op,omitempty"`
}

func main() {
	log.SetFlags(0)
	var (
		exp       = flag.String("exp", "all", "experiment to run (table1..table10, figure1..figure7, sec58, all)")
		datasets  = flag.String("datasets", "", "comma-separated dataset subset (default: all nine)")
		maxSeq    = flag.Int("max-seq", 96, "sequences per dataset (0 = full published size)")
		samples   = flag.Int("attack-samples", 600, "attack windows per evaluation")
		perms     = flag.Int("perms", 10000, "permutations for NMI significance")
		seed      = flag.Int64("seed", 7, "random seed")
		workers   = flag.Int("workers", 0, "sweep worker count (0 = GOMAXPROCS); output is identical for any value")
		progress  = flag.Bool("progress", false, "report per-cell progress on stderr")
		benchJSON = flag.String("bench-json", "", "write wall-clock timings to this JSON file")
		every     = flag.Duration("metrics-every", 0, "print a sweep metrics summary to stderr at this interval (0 = off); observation-only, output tables are unchanged")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	cfg := experiments.DefaultConfig()
	cfg.MaxSequences = *maxSeq
	cfg.AttackSamples = *samples
	cfg.Permutations = *perms
	cfg.Seed = *seed
	cfg.Workers = *workers
	if *progress {
		cfg.Progress = func(done, total int, label string) {
			fmt.Fprintf(os.Stderr, "[%d/%d] %s\n", done, total, label)
		}
	}
	if *every > 0 {
		reg := metrics.NewRegistry()
		cfg.Metrics = reg
		ticker := time.NewTicker(*every)
		defer ticker.Stop()
		go func() {
			for range ticker.C {
				fmt.Fprintf(os.Stderr, "metrics: %s\n", reg.Snapshot().Summary())
			}
		}()
	}

	var names []string
	if *datasets != "" {
		names = strings.Split(*datasets, ",")
	}

	report := benchReport{
		Workers:           *workers,
		GOMAXPROCS:        runtime.GOMAXPROCS(0),
		ExperimentSeconds: map[string]float64{},
	}
	run := func(id, title string, f func() (fmt.Stringer, error)) {
		start := time.Now()
		res, err := f()
		if err != nil {
			log.Fatalf("%s: %v", title, err)
		}
		report.ExperimentSeconds[id] = time.Since(start).Seconds()
		fmt.Println(res.String())
	}

	want := func(id string) bool { return *exp == "all" || *exp == id }
	ran := false
	start := time.Now()

	if want("table1") {
		run("table1", "Table 1", func() (fmt.Stringer, error) { return experiments.Table1(ctx, cfg) })
		ran = true
	}
	if want("figure1") {
		run("figure1", "Figure 1", func() (fmt.Stringer, error) { return experiments.Figure1(ctx, cfg) })
		ran = true
	}
	if want("table4") || want("table5") {
		t45Start := time.Now()
		res, err := experiments.Table45(ctx, cfg, names)
		if err != nil {
			log.Fatalf("tables 4/5: %v", err)
		}
		report.ExperimentSeconds["table45"] = time.Since(t45Start).Seconds()
		if want("table4") {
			fmt.Println(res.Table4String())
		}
		if want("table5") {
			fmt.Println(res.Table5String())
		}
		ran = true
	}
	if want("figure5") {
		run("figure5", "Figure 5", func() (fmt.Stringer, error) { return experiments.Figure5(ctx, cfg) })
		ran = true
	}
	if want("table6") {
		run("table6", "Table 6", func() (fmt.Stringer, error) { return experiments.Table6(ctx, cfg, names) })
		ran = true
	}
	if want("figure6") {
		run("figure6", "Figure 6", func() (fmt.Stringer, error) { return experiments.Figure6(ctx, cfg, names) })
		ran = true
	}
	if want("figure7") {
		run("figure7", "Figure 7", func() (fmt.Stringer, error) { return experiments.Figure7(ctx, cfg) })
		ran = true
	}
	if want("table7") {
		t7Start := time.Now()
		rows, err := experiments.Table7(ctx, cfg, names)
		if err != nil {
			log.Fatalf("table 7: %v", err)
		}
		report.ExperimentSeconds["table7"] = time.Since(t7Start).Seconds()
		fmt.Println(experiments.Table7String(rows))
		ran = true
	}
	if want("table8") {
		run("table8", "Table 8", func() (fmt.Stringer, error) { return experiments.Table8(ctx, cfg, names) })
		ran = true
	}
	if want("table9") || want("table10") {
		mcuStart := time.Now()
		for _, name := range []string{"activity", "tiselac"} {
			res, err := experiments.TableMCU(ctx, cfg, name)
			if err != nil {
				log.Fatalf("tables 9/10 (%s): %v", name, err)
			}
			if want("table9") {
				fmt.Println(res.Table9String())
			}
			if want("table10") {
				fmt.Println(res.Table10String())
			}
		}
		report.ExperimentSeconds["tablemcu"] = time.Since(mcuStart).Seconds()
		ran = true
	}
	if want("sec58") {
		s58Start := time.Now()
		res, err := experiments.Sec58(ctx, cfg)
		if err != nil {
			log.Fatalf("Sec 5.8: %v", err)
		}
		report.ExperimentSeconds["sec58"] = time.Since(s58Start).Seconds()
		report.EncoderNsPerOp = map[string]float64{"standard": res.StandardNs, "age": res.AGENs}
		report.EncoderAllocsPerOp = map[string]float64{"standard": res.StandardAllocs, "age": res.AGEAllocs}
		fmt.Println(res.String())
		ran = true
	}
	if want("utility") {
		run("utility", "Inference utility", func() (fmt.Stringer, error) { return experiments.InferenceUtility(ctx, cfg, "epilepsy", 0.7) })
		ran = true
	}
	if want("multievent") {
		run("multievent", "Multi-event batches", func() (fmt.Stringer, error) { return experiments.MultiEvent(ctx, cfg) })
		ran = true
	}
	if want("ablation") {
		run("ablation-g0", "G0 ablation", func() (fmt.Stringer, error) { return experiments.AblationG0(ctx, cfg, "epilepsy") })
		run("ablation-wmin", "w_min ablation", func() (fmt.Stringer, error) { return experiments.AblationWMin(ctx, cfg, "epilepsy") })
		ran = true
	}
	if want("compression") {
		run("compression", "Compression leakage", func() (fmt.Stringer, error) { return experiments.CompressionLeakage(ctx, cfg, "epilepsy") })
		ran = true
	}
	if want("buffered") {
		run("buffered", "Buffering defense", func() (fmt.Stringer, error) { return experiments.BufferedDefense(ctx, cfg, "epilepsy") })
		ran = true
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		flag.Usage()
		os.Exit(2)
	}
	total := time.Since(start)
	report.TotalSeconds = total.Seconds()
	if *benchJSON != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			log.Fatalf("bench-json: %v", err)
		}
		if err := os.WriteFile(*benchJSON, append(data, '\n'), 0o644); err != nil {
			log.Fatalf("bench-json: %v", err)
		}
	}
	fmt.Printf("done in %s\n", total.Round(time.Millisecond))
}
