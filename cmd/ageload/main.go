// Command ageload drives a synthetic sensor fleet against the ingest server
// to measure sustained throughput and latency under high concurrency. Every
// sensor is a real ingest.Client on its own TCP connection streaming
// fixed-size frames; the server runs the production shard/queue/backpressure
// path, so overload shows up as typed soft rejects (and bounded memory)
// rather than goroutine pileups.
//
// Usage:
//
//	ageload -sensors 1000 -frames 20 -frame-bytes 64 -out BENCH_ingest.json
//	ageload -sensors 2000 -shards 8 -workers 32 -queue 64
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/fixedpoint"
	"repro/internal/ingest"
	"repro/internal/metrics"
)

// loadSession discards frames, counting them. One exists per accepted
// connection; the shared counters aggregate across the whole run.
type loadSession struct {
	total  int
	frames *atomic.Int64
	bytes  *atomic.Int64
}

func (s *loadSession) Total() int { return s.total }

func (s *loadSession) Frame(index int, msg []byte) error {
	s.frames.Add(1)
	s.bytes.Add(int64(len(msg)))
	return nil
}

func (s *loadSession) Close(err error) {}

// genSource synthesizes one sensor's frames on demand: a single reused
// buffer stamped with the sensor and frame index, so memory stays flat no
// matter how large the run is. Seek just repositions the counter — the
// content of frame i is a pure function of (sensor, i), which is exactly
// the resume contract.
type genSource struct {
	sensorID int
	total    int
	next     int
	buf      []byte
}

func (g *genSource) Total() int            { return g.total }
func (g *genSource) Seek(resume int) error { g.next = resume; return nil }

func (g *genSource) Next(ctx context.Context) ([]byte, error) {
	// Honor cancellation: without this check a cancelled run would keep
	// synthesizing frames until the transport noticed the closed socket.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for i := range g.buf {
		g.buf[i] = byte(g.sensorID*31 + g.next*7 + i)
	}
	g.next++
	return g.buf, nil
}

// encSource synthesizes measurement batches and encodes them through a real
// core encoder, exercising the production encode kernels inside the load
// path. Frames are encoded in blocks with AppendEncodeBatchN so the per-
// encode setup amortizes; payload storage is reused across blocks. Frame i's
// content is a pure function of (sensor, i) — the LCG is reseeded from both
// every frame — so Seek satisfies the resume contract exactly.
type encSource struct {
	sensorID int
	total    int
	next     int
	enc      core.BatchAppendEncoder
	cfg      core.Config

	block   []core.Batch // reusable batch templates, len = block size
	dsts    [][]byte     // payload storage, parallel to block
	start   int          // frame index of dsts[0], -1 when the cache is cold
	cached  int          // valid frames in dsts
	lastErr error
}

func newEncSource(sensorID, total, block int, enc core.BatchAppendEncoder, cfg core.Config) *encSource {
	s := &encSource{sensorID: sensorID, total: total, enc: enc, cfg: cfg, start: -1}
	k := cfg.T / 2
	if k < 1 {
		k = 1
	}
	s.block = make([]core.Batch, block)
	for i := range s.block {
		b := core.Batch{Indices: make([]int, k), Values: make([][]float64, k)}
		for j := range b.Indices {
			b.Indices[j] = j * cfg.T / k
			b.Values[j] = make([]float64, cfg.D)
		}
		s.block[i] = b
	}
	return s
}

func (s *encSource) Total() int { return s.total }

func (s *encSource) Seek(resume int) error {
	s.next = resume
	return nil
}

// fillBatch overwrites slot's values deterministically from (sensor, frame).
func (s *encSource) fillBatch(slot, frame int) {
	x := uint32(s.sensorID)*2654435761 + uint32(frame)*40503 + 1
	max := s.cfg.Format.Max()
	for _, row := range s.block[slot].Values {
		for j := range row {
			x = x*1664525 + 1013904223
			row[j] = (float64(int32(x)) / float64(1<<31)) * max
		}
	}
}

func (s *encSource) Next(ctx context.Context) ([]byte, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if s.start < 0 || s.next < s.start || s.next >= s.start+s.cached {
		n := s.total - s.next
		if n > len(s.block) {
			n = len(s.block)
		}
		for i := 0; i < n; i++ {
			s.fillBatch(i, s.next+i)
		}
		var err error
		s.dsts, err = s.enc.AppendEncodeBatchN(s.dsts, s.block[:n])
		if err != nil {
			return nil, ingest.Terminal(fmt.Errorf("encode frame %d: %w", s.next, err))
		}
		s.start, s.cached = s.next, n
	}
	msg := s.dsts[s.next-s.start]
	s.next++
	return msg, nil
}

// percentiles summarizes a latency distribution in milliseconds.
type percentiles struct {
	P50 float64 `json:"p50_ms"`
	P90 float64 `json:"p90_ms"`
	P99 float64 `json:"p99_ms"`
	Max float64 `json:"max_ms"`
}

func summarize(durs []time.Duration) percentiles {
	if len(durs) == 0 {
		return percentiles{}
	}
	// Sort a copy: summarize is an observer, and reordering the caller's
	// slice would silently corrupt any index-aligned bookkeeping around it.
	durs = append([]time.Duration(nil), durs...)
	sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
	at := func(p float64) float64 {
		idx := int(p*float64(len(durs))+0.5) - 1
		if idx < 0 {
			idx = 0
		}
		if idx >= len(durs) {
			idx = len(durs) - 1
		}
		return float64(durs[idx]) / float64(time.Millisecond)
	}
	return percentiles{
		P50: at(0.50),
		P90: at(0.90),
		P99: at(0.99),
		Max: float64(durs[len(durs)-1]) / float64(time.Millisecond),
	}
}

// report is the -out JSON payload.
type report struct {
	Sensors         int    `json:"sensors"`
	FramesPerSensor int    `json:"frames_per_sensor"`
	FrameBytes      int    `json:"frame_bytes"`
	Shards          int    `json:"shards"`
	WorkersPerShard int    `json:"workers_per_shard"`
	QueueDepth      int    `json:"queue_depth"`
	WriteBatch      int    `json:"write_batch"`
	EncodeMode      string `json:"encode_mode"`

	WallSeconds    float64     `json:"wall_seconds"`
	FramesPerSec   float64     `json:"frames_per_sec"`
	MBPerSec       float64     `json:"mb_per_sec"`
	SessionLatency percentiles `json:"session_latency"`

	Completed   int   `json:"completed_sensors"`
	Failed      int   `json:"failed_sensors"`
	SoftRejects int64 `json:"soft_rejects"`
	Reconnects  int64 `json:"reconnects"`

	Metrics metrics.Snapshot `json:"metrics"`
}

func main() {
	log.SetFlags(0)
	var (
		sensors    = flag.Int("sensors", 1000, "concurrent sensors to run")
		frames     = flag.Int("frames", 20, "frames each sensor streams")
		frameBytes = flag.Int("frame-bytes", 64, "payload bytes per frame")

		shards  = flag.Int("shards", 4, "server accept shards")
		workers = flag.Int("workers", 64, "workers per shard (concurrent sessions = shards*workers)")
		queue   = flag.Int("queue", 128, "per-shard pending-connection queue depth")

		writeBatch = flag.Int("write-batch", 8, "frames gathered into one TCP write per client")
		encode     = flag.String("encode", "none", "frame content: none (stamped bytes), age, or standard (encode synthetic batches through the production kernels)")

		ioTimeout      = flag.Duration("io-timeout", 5*time.Second, "per-frame read/write deadline")
		rejectAttempts = flag.Int("reject-attempts", 64, "client budget for transient server rejects")
		reconnects     = flag.Int("reconnect-attempts", 2, "client budget for redial+resume after a dropped link")
		runTimeout     = flag.Duration("run-timeout", 2*time.Minute, "whole-run bound")
		out            = flag.String("out", "BENCH_ingest.json", "write the throughput/latency report to this JSON file (empty = skip)")
	)
	flag.Parse()
	if *sensors <= 0 || *frames <= 0 || *frameBytes <= 0 {
		log.Fatal("ageload: -sensors, -frames, and -frame-bytes must be positive")
	}

	// In encode mode every frame is a real encoded payload: a Q3.13
	// activity-style task sized so AGE's fixed message is about -frame-bytes.
	var encCfg core.Config
	var newEncoder func() (core.BatchAppendEncoder, error)
	switch *encode {
	case "none":
	case "age", "standard":
		encCfg = core.Config{
			T: 50, D: 6,
			Format:      fixedpoint.Format{Width: 16, NonFrac: 3},
			TargetBytes: *frameBytes,
		}
		if *encode == "age" {
			newEncoder = func() (core.BatchAppendEncoder, error) { return core.NewAGE(encCfg) }
		} else {
			newEncoder = func() (core.BatchAppendEncoder, error) { return core.NewStandard(encCfg) }
		}
		if _, err := newEncoder(); err != nil {
			log.Fatalf("ageload: -encode %s with -frame-bytes %d: %v", *encode, *frameBytes, err)
		}
	default:
		log.Fatalf("ageload: unknown -encode mode %q (want none, age, or standard)", *encode)
	}

	reg := metrics.NewRegistry()
	var gotFrames, gotBytes atomic.Int64
	srv, err := ingest.NewServer(ingest.ServerConfig{
		Handler: ingest.HandlerFuncs{
			OpenFunc: func(sensorID, delivered int) (ingest.Session, error) {
				return &loadSession{total: *frames, frames: &gotFrames, bytes: &gotBytes}, nil
			},
		},
		Shards:          *shards,
		WorkersPerShard: *workers,
		QueueDepth:      *queue,
		IOTimeout:       *ioTimeout,
		Metrics:         reg,
	})
	if err != nil {
		log.Fatalf("ageload: %v", err)
	}
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		log.Fatalf("ageload: listen: %v", err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve() }()

	ctx, cancel := context.WithTimeout(context.Background(), *runTimeout)
	defer cancel()

	durs := make([]time.Duration, *sensors)
	errs := make([]error, *sensors)
	var softRejects, reconnectCount atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < *sensors; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			client := ingest.NewClient(ingest.ClientConfig{
				Addr:              srv.Addr().String(),
				SensorID:          id,
				IOTimeout:         *ioTimeout,
				DialAttempts:      6,
				RejectAttempts:    *rejectAttempts,
				ReconnectAttempts: *reconnects,
				WriteBatch:        *writeBatch,
				Metrics:           reg,
			})
			var src ingest.FrameSource
			if newEncoder != nil {
				enc, err := newEncoder()
				if err != nil {
					errs[id] = err
					return
				}
				block := *writeBatch
				if block < 1 {
					block = 1
				}
				src = newEncSource(id, *frames, block, enc, encCfg)
			} else {
				src = &genSource{sensorID: id, total: *frames, buf: make([]byte, *frameBytes)}
			}
			t0 := time.Now()
			stats, err := client.Run(ctx, src)
			durs[id] = time.Since(t0)
			errs[id] = err
			softRejects.Add(int64(stats.SoftRejects))
			reconnectCount.Add(int64(stats.Reconnects))
		}(i)
	}
	wg.Wait()
	wall := time.Since(start)

	drainCtx, drainCancel := context.WithTimeout(context.Background(), 2*(*ioTimeout))
	defer drainCancel()
	if err := srv.Drain(drainCtx); err != nil {
		log.Fatalf("ageload: drain: %v", err)
	}
	if err := <-serveErr; err != nil && !errors.Is(err, ingest.ErrClosed) {
		log.Fatalf("ageload: serve: %v", err)
	}

	rep := report{
		Sensors:         *sensors,
		FramesPerSensor: *frames,
		FrameBytes:      *frameBytes,
		Shards:          *shards,
		WorkersPerShard: *workers,
		QueueDepth:      *queue,
		WriteBatch:      *writeBatch,
		EncodeMode:      *encode,
		WallSeconds:     wall.Seconds(),
		SoftRejects:     softRejects.Load(),
		Reconnects:      reconnectCount.Load(),
		Metrics:         reg.Snapshot(),
	}
	var okDurs []time.Duration
	for i, err := range errs {
		if err != nil {
			rep.Failed++
			if rep.Failed <= 3 {
				log.Printf("ageload: sensor %d: %v", i, err)
			}
			continue
		}
		rep.Completed++
		okDurs = append(okDurs, durs[i])
	}
	rep.SessionLatency = summarize(okDurs)
	if wall > 0 {
		rep.FramesPerSec = float64(gotFrames.Load()) / wall.Seconds()
		rep.MBPerSec = float64(gotBytes.Load()) / wall.Seconds() / 1e6
	}

	fmt.Printf("ageload: %d/%d sensors completed, %d frames (%.0f frames/s, %.2f MB/s) in %.2fs\n",
		rep.Completed, rep.Sensors, gotFrames.Load(), rep.FramesPerSec, rep.MBPerSec, rep.WallSeconds)
	fmt.Printf("ageload: session latency p50 %.1fms p90 %.1fms p99 %.1fms max %.1fms; %d soft rejects, %d reconnects\n",
		rep.SessionLatency.P50, rep.SessionLatency.P90, rep.SessionLatency.P99, rep.SessionLatency.Max,
		rep.SoftRejects, rep.Reconnects)

	if *out != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			log.Fatalf("ageload: report: %v", err)
		}
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			log.Fatalf("ageload: report: %v", err)
		}
		fmt.Printf("ageload: wrote %s\n", *out)
	}
	if rep.Failed > 0 {
		log.Fatalf("ageload: %d sensors failed", rep.Failed)
	}
}
