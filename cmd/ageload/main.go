// Command ageload drives a synthetic sensor fleet against the ingest server
// to measure sustained throughput and latency under high concurrency. Every
// sensor is a real ingest.Client on its own TCP connection streaming
// fixed-size frames; the server runs the production shard/queue/backpressure
// path, so overload shows up as typed soft rejects (and bounded memory)
// rather than goroutine pileups.
//
// With -nodes > 1 the same fleet drives a gateway-fronted ingest cluster
// (internal/cluster): sensors connect to one address, the gateway routes by
// consistent hash with session affinity, and -kill-node proves the
// migration/resume path by killing a node mid-run while -verify checks every
// delivered stream byte-for-byte.
//
// Usage:
//
//	ageload -sensors 1000 -frames 20 -frame-bytes 64 -out BENCH_ingest.json
//	ageload -sensors 2000 -shards 8 -workers 32 -queue 64
//	ageload -nodes 3 -sensors 50000 -conns 1000 -burst 5 -kill-node 1 -verify
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/fixedpoint"
	"repro/internal/ingest"
	"repro/internal/metrics"
	"repro/internal/projection"
)

// loadSession discards frames, counting them. One exists per accepted
// connection; the shared counters aggregate across the whole run. When the
// fleet is paced, payloads carry the in-payload real/dummy marker: the
// session unwraps it and drops cover traffic the way a production handler
// does after unsealing.
type loadSession struct {
	total    int
	paced    bool
	sensorID int
	ver      *verifier
	frames   *atomic.Int64
	bytes    *atomic.Int64
}

func (s *loadSession) Total() int { return s.total }

func (s *loadSession) Frame(index int, msg []byte) error {
	if s.paced {
		data, dummy, err := ingest.Unmark(msg)
		if err != nil {
			return err
		}
		if dummy {
			return ingest.ErrDummyFrame
		}
		msg = data
	}
	if s.ver != nil {
		s.ver.record(s.sensorID, index, msg)
	}
	s.frames.Add(1)
	s.bytes.Add(int64(len(msg)))
	return nil
}

func (s *loadSession) Close(err error) {}

// verifier checks delivered frames byte-for-byte against the generator and
// tracks which (sensor, frame) pairs have arrived at least once. Frame
// content is a pure function of (sensor, index) — the genSource contract —
// so no per-frame storage is needed: a bitset of seen pairs plus content
// comparison covers loss, corruption, and (after a node kill resets a
// session) idempotent re-delivery, at any fleet size.
type verifier struct {
	frames     int
	frameBytes int
	words      int // per-sensor bitset words
	locks      []sync.Mutex
	seen       [][]uint64
	mismatched atomic.Int64
	duplicates atomic.Int64
}

const verifierShards = 64

func newVerifier(sensors, frames, frameBytes int) *verifier {
	v := &verifier{
		frames:     frames,
		frameBytes: frameBytes,
		words:      (frames + 63) / 64,
		locks:      make([]sync.Mutex, verifierShards),
		seen:       make([][]uint64, sensors),
	}
	for i := range v.seen {
		v.seen[i] = make([]uint64, v.words)
	}
	return v
}

func (v *verifier) record(sensorID, index int, msg []byte) {
	if sensorID < 0 || sensorID >= len(v.seen) || index < 0 || index >= v.frames {
		v.mismatched.Add(1)
		return
	}
	ok := len(msg) == v.frameBytes
	for i := 0; ok && i < len(msg); i++ {
		ok = msg[i] == byte(sensorID*31+index*7+i)
	}
	if !ok {
		v.mismatched.Add(1)
		return
	}
	mu := &v.locks[sensorID%verifierShards]
	mu.Lock()
	w, bit := index/64, uint64(1)<<uint(index%64)
	if v.seen[sensorID][w]&bit != 0 {
		mu.Unlock()
		v.duplicates.Add(1)
		return
	}
	v.seen[sensorID][w] |= bit
	mu.Unlock()
}

// missing counts (sensor, frame) pairs that were never delivered. Call only
// after the fleet has stopped.
func (v *verifier) missing() int64 {
	var n int64
	for id := range v.seen {
		for idx := 0; idx < v.frames; idx++ {
			if v.seen[id][idx/64]&(uint64(1)<<uint(idx%64)) == 0 {
				n++
			}
		}
	}
	return n
}

// errBurstPause is the sentinel a burstSource raises after its per-connection
// frame budget: the client run ends immediately (Terminal skips the reconnect
// budget) and the fleet loop reconnects later, resuming from the server's
// delivered index. This duty-cycles connections so a fleet far larger than
// the descriptor limit can all be mid-stream concurrently.
var errBurstPause = errors.New("burst budget reached; reconnect to continue")

// burstSource caps how many frames one connection carries. Seek marks the
// start of a connection (the client seeks to the server's resume index right
// after the hello), which resets the budget.
type burstSource struct {
	ingest.FrameSource
	limit int
	sent  int
}

func (b *burstSource) Seek(resume int) error {
	b.sent = 0
	return b.FrameSource.Seek(resume)
}

func (b *burstSource) Next(ctx context.Context) ([]byte, error) {
	if b.sent >= b.limit {
		return nil, ingest.Terminal(errBurstPause)
	}
	msg, err := b.FrameSource.Next(ctx)
	if err == nil {
		b.sent++
	}
	return msg, err
}

// pacedSource adapts a FrameSource for the release pacer: real payloads gain
// the in-payload marker, and a synthetic generation clock (a fixed gap per
// frame) gives the pacer's age-of-information accounting a production time
// to charge against.
type pacedSource struct {
	ingest.FrameSource
	gap time.Duration
}

func (p *pacedSource) Next(ctx context.Context) ([]byte, error) {
	msg, err := p.FrameSource.Next(ctx)
	if err != nil {
		return nil, err
	}
	return ingest.MarkReal(msg), nil
}

func (p *pacedSource) LastGap() time.Duration { return p.gap }

// genSource synthesizes one sensor's frames on demand: a single reused
// buffer stamped with the sensor and frame index, so memory stays flat no
// matter how large the run is. Seek just repositions the counter — the
// content of frame i is a pure function of (sensor, i), which is exactly
// the resume contract.
type genSource struct {
	sensorID int
	total    int
	next     int
	buf      []byte
}

func (g *genSource) Total() int            { return g.total }
func (g *genSource) Seek(resume int) error { g.next = resume; return nil }

func (g *genSource) Next(ctx context.Context) ([]byte, error) {
	// Honor cancellation: without this check a cancelled run would keep
	// synthesizing frames until the transport noticed the closed socket.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for i := range g.buf {
		g.buf[i] = byte(g.sensorID*31 + g.next*7 + i)
	}
	g.next++
	return g.buf, nil
}

// encSource synthesizes measurement batches and encodes them through a real
// core encoder, exercising the production encode kernels inside the load
// path. Frames are encoded in blocks with AppendEncodeBatchN so the per-
// encode setup amortizes; payload storage is reused across blocks. Frame i's
// content is a pure function of (sensor, i) — the LCG is reseeded from both
// every frame — so Seek satisfies the resume contract exactly.
type encSource struct {
	sensorID int
	total    int
	next     int
	enc      core.BatchAppendEncoder
	cfg      core.Config

	block   []core.Batch // reusable batch templates, len = block size
	dsts    [][]byte     // payload storage, parallel to block
	start   int          // frame index of dsts[0], -1 when the cache is cold
	cached  int          // valid frames in dsts
	lastErr error
}

// frameK is the adaptive-style sample count for one frame: frames in the
// "event" label class carry twice the samples of quiet frames, mirroring how
// an adaptive policy samples densely around events. Under -encode standard
// the two counts produce two distinct wire sizes perfectly correlated with
// the label (the leak the live privacy monitor exists to show); under
// -encode age every frame still lands on the same fixed message size. The
// label function must match the projection Truth in runLoad.
func frameK(sensorID, frame, t int) int {
	k := t / 4
	if (sensorID+frame)%2 == 1 {
		k = t / 2
	}
	if k < 1 {
		k = 1
	}
	return k
}

func newEncSource(sensorID, total, block int, enc core.BatchAppendEncoder, cfg core.Config) *encSource {
	s := &encSource{sensorID: sensorID, total: total, enc: enc, cfg: cfg, start: -1}
	// Backing arrays sized for the largest per-frame sample count; fillBatch
	// reslices them to each frame's adaptive count.
	kMax := cfg.T / 2
	if kMax < 1 {
		kMax = 1
	}
	s.block = make([]core.Batch, block)
	for i := range s.block {
		b := core.Batch{Indices: make([]int, kMax), Values: make([][]float64, kMax)}
		for j := range b.Indices {
			b.Values[j] = make([]float64, cfg.D)
		}
		s.block[i] = b
	}
	return s
}

func (s *encSource) Total() int { return s.total }

func (s *encSource) Seek(resume int) error {
	s.next = resume
	return nil
}

// fillBatch overwrites slot's values deterministically from (sensor, frame).
func (s *encSource) fillBatch(slot, frame int) {
	k := frameK(s.sensorID, frame, s.cfg.T)
	b := &s.block[slot]
	b.Indices = b.Indices[:k]
	b.Values = b.Values[:k]
	x := uint32(s.sensorID)*2654435761 + uint32(frame)*40503 + 1
	max := s.cfg.Format.Max()
	for i := range b.Indices {
		b.Indices[i] = i * s.cfg.T / k
		row := b.Values[i]
		for j := range row {
			x = x*1664525 + 1013904223
			row[j] = (float64(int32(x)) / float64(1<<31)) * max
		}
	}
}

func (s *encSource) Next(ctx context.Context) ([]byte, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if s.start < 0 || s.next < s.start || s.next >= s.start+s.cached {
		n := s.total - s.next
		if n > len(s.block) {
			n = len(s.block)
		}
		for i := 0; i < n; i++ {
			s.fillBatch(i, s.next+i)
		}
		var err error
		s.dsts, err = s.enc.AppendEncodeBatchN(s.dsts, s.block[:n])
		if err != nil {
			return nil, ingest.Terminal(fmt.Errorf("encode frame %d: %w", s.next, err))
		}
		s.start, s.cached = s.next, n
	}
	msg := s.dsts[s.next-s.start]
	s.next++
	return msg, nil
}

// percentiles summarizes a latency distribution in milliseconds.
type percentiles struct {
	P50 float64 `json:"p50_ms"`
	P90 float64 `json:"p90_ms"`
	P99 float64 `json:"p99_ms"`
	Max float64 `json:"max_ms"`
}

func summarize(durs []time.Duration) percentiles {
	if len(durs) == 0 {
		return percentiles{}
	}
	// Sort a copy: summarize is an observer, and reordering the caller's
	// slice would silently corrupt any index-aligned bookkeeping around it.
	durs = append([]time.Duration(nil), durs...)
	sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
	at := func(p float64) float64 {
		idx := int(p*float64(len(durs))+0.5) - 1
		if idx < 0 {
			idx = 0
		}
		if idx >= len(durs) {
			idx = len(durs) - 1
		}
		return float64(durs[idx]) / float64(time.Millisecond)
	}
	return percentiles{
		P50: at(0.50),
		P90: at(0.90),
		P99: at(0.99),
		Max: float64(durs[len(durs)-1]) / float64(time.Millisecond),
	}
}

// pacerReport summarizes the frame-release pacer's cost for one run: how
// much of the wire traffic was real (goodput) and how stale frames were at
// release (age of information).
type pacerReport struct {
	Mode        string  `json:"mode"`
	IntervalMS  float64 `json:"interval_ms"`
	JitterFrac  float64 `json:"jitter_frac"`
	GenGapMS    float64 `json:"gen_gap_ms"`
	RealFrames  int64   `json:"real_frames"`
	DummyFrames int64   `json:"dummy_frames"`
	DummyBytes  int64   `json:"dummy_bytes"`
	GoodputPct  float64 `json:"goodput_pct"`
	MeanAoIMS   float64 `json:"mean_aoi_ms"`
	MaxAoIMS    float64 `json:"max_aoi_ms"`
}

// report is the -out JSON payload.
type report struct {
	Sensors         int    `json:"sensors"`
	FramesPerSensor int    `json:"frames_per_sensor"`
	FrameBytes      int    `json:"frame_bytes"`
	Shards          int    `json:"shards"`
	WorkersPerShard int    `json:"workers_per_shard"`
	QueueDepth      int    `json:"queue_depth"`
	WriteBatch      int    `json:"write_batch"`
	EncodeMode      string `json:"encode_mode"`

	WallSeconds     float64     `json:"wall_seconds"`
	DeliveredFrames int64       `json:"delivered_frames"`
	FramesPerSec    float64     `json:"frames_per_sec"`
	MBPerSec        float64     `json:"mb_per_sec"`
	SessionLatency  percentiles `json:"session_latency"`

	Completed   int   `json:"completed_sensors"`
	Failed      int   `json:"failed_sensors"`
	SoftRejects int64 `json:"soft_rejects"`
	Reconnects  int64 `json:"reconnects"`

	Pacer *pacerReport `json:"pacer,omitempty"`

	Projection *projectionReport `json:"projection,omitempty"`

	Cluster *clusterReport `json:"cluster,omitempty"`

	Metrics metrics.Snapshot `json:"metrics"`
}

// clusterReport summarizes a multi-node run: how the gateway routed and
// migrated the fleet, what the mid-run kill cost, and what the byte-exact
// verifier found. missing_frames and mismatched_frames are the zero-loss
// acceptance figures the CI gate pins at zero.
type clusterReport struct {
	Nodes        int   `json:"nodes"`
	KilledNode   int   `json:"killed_node"` // -1 when no kill was requested
	KillAtFrames int64 `json:"kill_at_frames,omitempty"`
	ConnCap      int   `json:"conn_cap"`
	BurstFrames  int   `json:"burst_frames"`

	Routed           int64 `json:"routed"`
	Migrations       int64 `json:"migrations"`
	GatewayRejects   int64 `json:"gateway_rejects"`
	NodeDialFailures int64 `json:"node_dial_failures"`
	LocatorEvicted   int64 `json:"locator_evicted"`

	Verified         bool  `json:"verified"`
	MissingFrames    int64 `json:"missing_frames"`
	MismatchedFrames int64 `json:"mismatched_frames"`
	DuplicateFrames  int64 `json:"duplicate_frames"`
}

// projectionReport summarizes the streaming pipeline's work for one run —
// how much of the fleet's traffic was staged and projected, and what the
// live privacy monitor measured.
type projectionReport struct {
	StagedRecords   int64   `json:"staged_records"`
	DecodeErrors    int64   `json:"decode_errors"`
	CoveragePct     float64 `json:"coverage_pct"`
	Watermark       int     `json:"watermark"`
	SizeEntropyBits float64 `json:"size_entropy_bits"`
	NMI             float64 `json:"nmi"`
	DistinctSizes   int     `json:"distinct_sizes"`
	LabelDetections int64   `json:"label_detections"`
}

// loadOptions collects everything runLoad needs; main fills it from flags
// and tests fill it directly.
type loadOptions struct {
	sensors, frames, frameBytes int
	shards, workers, queue      int
	writeBatch                  int
	encode                      string
	ioTimeout                   time.Duration
	rejectAttempts              int
	reconnects                  int
	runTimeout                  time.Duration

	pace         ingest.PaceMode
	paceInterval time.Duration
	paceJitter   float64
	genGap       time.Duration

	project       bool
	projectWindow int
	projectAddr   string

	nodes      int
	killNode   int
	killAtFrac float64
	verify     bool
	conns      int
	burst      int
}

func main() {
	log.SetFlags(0)
	var (
		sensors    = flag.Int("sensors", 1000, "concurrent sensors to run")
		frames     = flag.Int("frames", 20, "frames each sensor streams")
		frameBytes = flag.Int("frame-bytes", 64, "payload bytes per frame")

		shards  = flag.Int("shards", 4, "server accept shards")
		workers = flag.Int("workers", 64, "workers per shard (concurrent sessions = shards*workers)")
		queue   = flag.Int("queue", 128, "per-shard pending-connection queue depth")

		writeBatch = flag.Int("write-batch", 8, "frames gathered into one TCP write per client")
		encode     = flag.String("encode", "none", "frame content: none (stamped bytes), age, or standard (encode synthetic batches through the production kernels)")

		pace         = flag.String("pace", "off", "frame-release pacing: off, live, constant, or jitter")
		paceInterval = flag.Duration("pace-interval", 2*time.Millisecond, "paced release interval (constant/jitter)")
		paceJitter   = flag.Float64("pace-jitter", 0.3, "release jitter fraction (jitter mode)")
		genGap       = flag.Duration("pace-gen-gap", 3*time.Millisecond, "synthetic per-frame generation gap charged to age of information (slower than -pace-interval so slots without a pending frame carry cover traffic)")

		project       = flag.Bool("project", false, "run the streaming pipeline (decode → stage → project) on the delivery path and report its KPIs")
		projectWindow = flag.Int("project-window", 64, "rolling-KPI window for -project")
		projectAddr   = flag.String("project-addr", "", "serve /metrics and /projections on this address during a -project run (empty = off)")

		nodes      = flag.Int("nodes", 1, "ingest nodes behind one gateway (>1 runs the cluster path)")
		killNode   = flag.Int("kill-node", -1, "kill this node id mid-run to exercise migration/resume (-1 = none)")
		killAtFrac = flag.Float64("kill-at-frac", 0.5, "kill the node once this fraction of the fleet's frames has been delivered")
		verify     = flag.Bool("verify", false, "check every delivered frame byte-for-byte against the generator (cluster mode, -encode none)")
		conns      = flag.Int("conns", 0, "cap on concurrently connected sensors; parked sensors wait for a slot (0 = no cap)")
		burst      = flag.Int("burst", 0, "frames per connection before a sensor disconnects and rejoins the queue (0 = whole stream in one connection)")

		ioTimeout      = flag.Duration("io-timeout", 5*time.Second, "per-frame read/write deadline")
		rejectAttempts = flag.Int("reject-attempts", 64, "client budget for transient server rejects")
		reconnects     = flag.Int("reconnect-attempts", 2, "client budget for redial+resume after a dropped link")
		runTimeout     = flag.Duration("run-timeout", 2*time.Minute, "whole-run bound")
		out            = flag.String("out", "BENCH_ingest.json", "write the throughput/latency report to this JSON file (empty = skip)")
	)
	flag.Parse()
	if *sensors <= 0 || *frames <= 0 || *frameBytes <= 0 {
		log.Fatal("ageload: -sensors, -frames, and -frame-bytes must be positive")
	}
	paceMode, err := ingest.ParsePaceMode(*pace)
	if err != nil {
		log.Fatalf("ageload: %v", err)
	}

	opts := loadOptions{
		sensors: *sensors, frames: *frames, frameBytes: *frameBytes,
		shards: *shards, workers: *workers, queue: *queue,
		writeBatch: *writeBatch, encode: *encode,
		ioTimeout: *ioTimeout, rejectAttempts: *rejectAttempts,
		reconnects: *reconnects, runTimeout: *runTimeout,
		pace: paceMode, paceInterval: *paceInterval,
		paceJitter: *paceJitter, genGap: *genGap,
		project: *project, projectWindow: *projectWindow, projectAddr: *projectAddr,
		nodes: *nodes, killNode: *killNode, killAtFrac: *killAtFrac,
		verify: *verify, conns: *conns, burst: *burst,
	}
	run := runLoad
	if opts.nodes > 1 {
		run = runCluster
	}
	rep, err := run(opts)
	if err != nil {
		log.Fatalf("ageload: %v", err)
	}

	fmt.Printf("ageload: %d/%d sensors completed, %d frames (%.0f frames/s, %.2f MB/s) in %.2fs\n",
		rep.Completed, rep.Sensors, rep.DeliveredFrames, rep.FramesPerSec, rep.MBPerSec, rep.WallSeconds)
	fmt.Printf("ageload: session latency p50 %.1fms p90 %.1fms p99 %.1fms max %.1fms; %d soft rejects, %d reconnects\n",
		rep.SessionLatency.P50, rep.SessionLatency.P90, rep.SessionLatency.P99, rep.SessionLatency.Max,
		rep.SoftRejects, rep.Reconnects)
	if p := rep.Pacer; p != nil {
		fmt.Printf("ageload: pacer %s: %.1f%% goodput (%d real, %d dummy frames), mean AoI %.2fms max %.2fms\n",
			p.Mode, p.GoodputPct, p.RealFrames, p.DummyFrames, p.MeanAoIMS, p.MaxAoIMS)
	}
	if pr := rep.Projection; pr != nil {
		fmt.Printf("ageload: projection: %d staged (%.1f%% coverage, %d decode errors), size entropy %.3f bits, NMI %.4f\n",
			pr.StagedRecords, pr.CoveragePct, pr.DecodeErrors, pr.SizeEntropyBits, pr.NMI)
	}
	if cr := rep.Cluster; cr != nil {
		fmt.Printf("ageload: cluster: %d nodes, %d routed, %d migrations, %d gateway rejects, %d node dial failures\n",
			cr.Nodes, cr.Routed, cr.Migrations, cr.GatewayRejects, cr.NodeDialFailures)
		if cr.Verified {
			fmt.Printf("ageload: verify: %d missing, %d mismatched, %d duplicate frames\n",
				cr.MissingFrames, cr.MismatchedFrames, cr.DuplicateFrames)
		}
	}

	if *out != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			log.Fatalf("ageload: report: %v", err)
		}
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			log.Fatalf("ageload: report: %v", err)
		}
		fmt.Printf("ageload: wrote %s\n", *out)
	}
	if rep.Failed > 0 {
		log.Fatalf("ageload: %d sensors failed", rep.Failed)
	}
	if cr := rep.Cluster; cr != nil && cr.Verified && (cr.MissingFrames > 0 || cr.MismatchedFrames > 0) {
		log.Fatalf("ageload: verification failed: %d missing, %d mismatched frames",
			cr.MissingFrames, cr.MismatchedFrames)
	}
}

// runLoad drives one full load run: a production ingest server on loopback,
// opts.sensors real clients streaming opts.frames each, and the report
// summarizing what the wire saw.
func runLoad(opts loadOptions) (*report, error) {
	// In encode mode every frame is a real encoded payload: a Q3.13
	// activity-style task sized so AGE's fixed message is about -frame-bytes.
	var encCfg core.Config
	var newEncoder func() (core.BatchAppendEncoder, error)
	switch opts.encode {
	case "none":
	case "age", "standard":
		encCfg = core.Config{
			T: 50, D: 6,
			Format:      fixedpoint.Format{Width: 16, NonFrac: 3},
			TargetBytes: opts.frameBytes,
		}
		if opts.encode == "age" {
			newEncoder = func() (core.BatchAppendEncoder, error) { return core.NewAGE(encCfg) }
		} else {
			newEncoder = func() (core.BatchAppendEncoder, error) { return core.NewStandard(encCfg) }
		}
		if _, err := newEncoder(); err != nil {
			return nil, fmt.Errorf("-encode %s with -frame-bytes %d: %w", opts.encode, opts.frameBytes, err)
		}
	default:
		return nil, fmt.Errorf("unknown -encode mode %q (want none, age, or standard)", opts.encode)
	}
	paced := opts.pace != ingest.PaceOff
	if paced && opts.pace != ingest.PaceLive && opts.paceInterval <= 0 {
		return nil, fmt.Errorf("-pace %s needs -pace-interval > 0", opts.pace)
	}

	reg := metrics.NewRegistry()

	// -project runs the streaming pipeline on the delivery path: the tap
	// decodes each delivered frame (through the same codec the fleet
	// encodes with), stages it, and the projection workers keep the live
	// KPIs. Labels are synthetic (a deterministic function of sensor and
	// frame, matching frameK's adaptive sample count) so the NMI monitor
	// has a marginal to correlate sizes against: standard encoding leaks
	// the label through the two wire sizes, AGE reads zero.
	var eng *projection.Engine
	if opts.project {
		pcfg := projection.Config{
			T: encCfg.T, D: encCfg.D,
			Unmark: paced,
			Window: opts.projectWindow,
			Truth: func(sensorID, index int) ([][]float64, int, bool) {
				return nil, (sensorID + index) % 2, true
			},
		}
		if newEncoder != nil {
			dec, err := newEncoder()
			if err != nil {
				return nil, err
			}
			pcfg.Decode = dec.(core.Decoder)
		}
		eng = projection.New(pcfg)
	}

	var gotFrames, gotBytes atomic.Int64
	srv, err := ingest.NewServer(ingest.ServerConfig{
		Handler: ingest.HandlerFuncs{
			OpenFunc: func(sensorID, delivered int) (ingest.Session, error) {
				return &loadSession{total: opts.frames, paced: paced, frames: &gotFrames, bytes: &gotBytes}, nil
			},
		},
		Shards:          opts.shards,
		WorkersPerShard: opts.workers,
		QueueDepth:      opts.queue,
		IOTimeout:       opts.ioTimeout,
		Metrics:         reg,
		Stager:          stagerOrNil(eng),
	})
	if err != nil {
		return nil, err
	}
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		return nil, fmt.Errorf("listen: %w", err)
	}
	if eng != nil && opts.projectAddr != "" {
		dbg, err := reg.ListenAndServeWith(opts.projectAddr, map[string]http.Handler{
			"/projections": eng.Handler(),
		})
		if err != nil {
			return nil, fmt.Errorf("project-addr: %w", err)
		}
		defer dbg.Close()
		log.Printf("ageload: serving /metrics and /projections on %s", dbg.Addr)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve() }()

	ctx, cancel := context.WithTimeout(context.Background(), opts.runTimeout)
	defer cancel()

	durs := make([]time.Duration, opts.sensors)
	errs := make([]error, opts.sensors)
	allStats := make([]ingest.ClientStats, opts.sensors)
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < opts.sensors; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			ccfg := ingest.ClientConfig{
				Addr:              srv.Addr().String(),
				SensorID:          id,
				IOTimeout:         opts.ioTimeout,
				DialAttempts:      6,
				RejectAttempts:    opts.rejectAttempts,
				ReconnectAttempts: opts.reconnects,
				WriteBatch:        opts.writeBatch,
				Metrics:           reg,
			}
			if paced {
				ccfg.Seed = int64(id)*2654435761 + 1
				ccfg.Pacer = ingest.PacerConfig{
					Mode:       opts.pace,
					Interval:   opts.paceInterval,
					JitterFrac: opts.paceJitter,
					Dummy: func() ([]byte, error) {
						return ingest.MarkDummy(make([]byte, opts.frameBytes)), nil
					},
				}
			}
			client := ingest.NewClient(ccfg)
			var src ingest.FrameSource
			if newEncoder != nil {
				enc, err := newEncoder()
				if err != nil {
					errs[id] = err
					return
				}
				block := opts.writeBatch
				if block < 1 {
					block = 1
				}
				src = newEncSource(id, opts.frames, block, enc, encCfg)
			} else {
				src = &genSource{sensorID: id, total: opts.frames, buf: make([]byte, opts.frameBytes)}
			}
			if paced {
				src = &pacedSource{FrameSource: src, gap: opts.genGap}
			}
			t0 := time.Now()
			stats, err := client.Run(ctx, src)
			durs[id] = time.Since(t0)
			errs[id] = err
			allStats[id] = stats
		}(i)
	}
	wg.Wait()
	wall := time.Since(start)

	drainCtx, drainCancel := context.WithTimeout(context.Background(), 2*opts.ioTimeout)
	defer drainCancel()
	if err := srv.Drain(drainCtx); err != nil {
		return nil, fmt.Errorf("drain: %w", err)
	}
	if err := <-serveErr; err != nil && !errors.Is(err, ingest.ErrClosed) {
		return nil, fmt.Errorf("serve: %w", err)
	}
	var projSnap *projection.Snapshot
	if eng != nil {
		// The server has drained: no more frames can reach the tap, so
		// Close drains the workers and the snapshot is final.
		eng.Close()
		s := eng.Snapshot()
		projSnap = &s
	}

	rep := &report{
		Sensors:         opts.sensors,
		FramesPerSensor: opts.frames,
		FrameBytes:      opts.frameBytes,
		Shards:          opts.shards,
		WorkersPerShard: opts.workers,
		QueueDepth:      opts.queue,
		WriteBatch:      opts.writeBatch,
		EncodeMode:      opts.encode,
		WallSeconds:     wall.Seconds(),
		DeliveredFrames: gotFrames.Load(),
		Metrics:         reg.Snapshot(),
	}
	var okDurs []time.Duration
	var realFrames, dummyFrames, dummyBytes, aoiTotal, aoiMax int64
	for i, err := range errs {
		st := allStats[i]
		rep.SoftRejects += int64(st.SoftRejects)
		rep.Reconnects += int64(st.Reconnects)
		realFrames += int64(st.FramesSent)
		dummyFrames += int64(st.DummyFrames)
		dummyBytes += int64(st.DummyBytesSent)
		aoiTotal += st.AoIMicrosTotal
		if st.AoIMicrosMax > aoiMax {
			aoiMax = st.AoIMicrosMax
		}
		if err != nil {
			rep.Failed++
			if rep.Failed <= 3 {
				log.Printf("ageload: sensor %d: %v", i, err)
			}
			continue
		}
		rep.Completed++
		okDurs = append(okDurs, durs[i])
	}
	rep.SessionLatency = summarize(okDurs)
	if wall > 0 {
		rep.FramesPerSec = float64(gotFrames.Load()) / wall.Seconds()
		rep.MBPerSec = float64(gotBytes.Load()) / wall.Seconds() / 1e6
	}
	if paced {
		p := &pacerReport{
			Mode:        opts.pace.String(),
			IntervalMS:  float64(opts.paceInterval) / float64(time.Millisecond),
			JitterFrac:  opts.paceJitter,
			GenGapMS:    float64(opts.genGap) / float64(time.Millisecond),
			RealFrames:  realFrames,
			DummyFrames: dummyFrames,
			DummyBytes:  dummyBytes,
			MaxAoIMS:    float64(aoiMax) / 1e3,
		}
		if total := realFrames + dummyFrames; total > 0 {
			p.GoodputPct = 100 * float64(realFrames) / float64(total)
		}
		if realFrames > 0 {
			p.MeanAoIMS = float64(aoiTotal) / float64(realFrames) / 1e3
		}
		rep.Pacer = p
	}
	if projSnap != nil {
		rep.Projection = &projectionReport{
			StagedRecords:   projSnap.StagedRecords,
			DecodeErrors:    projSnap.DecodeErrors,
			CoveragePct:     projSnap.CoveragePct,
			Watermark:       projSnap.Watermark,
			SizeEntropyBits: projSnap.Privacy.SizeEntropyBits,
			NMI:             projSnap.Privacy.NMI,
			DistinctSizes:   projSnap.Privacy.DistinctSizes,
			LabelDetections: projSnap.Events.LabelDetections,
		}
	}
	return rep, nil
}

// runCluster drives the fleet against a gateway-fronted multi-node ingest
// cluster. Sensors speak to one address; the gateway routes by consistent
// hash with session affinity and migrates sessions on drain/rebalance. The
// optional mid-run kill throws away one node's session state, which clients
// absorb by resuming (from the killed node's perspective, from frame 0 —
// idempotent re-delivery the verifier tolerates as duplicates).
func runCluster(opts loadOptions) (*report, error) {
	if opts.nodes < 2 {
		return nil, fmt.Errorf("-nodes %d: the cluster path needs at least 2 nodes", opts.nodes)
	}
	if opts.encode != "none" {
		return nil, fmt.Errorf("-encode %s with -nodes: the cluster path drives stamped frames only", opts.encode)
	}
	if opts.project {
		return nil, errors.New("-project with -nodes: the streaming pipeline is single-node; drop one of the flags")
	}
	if opts.pace != ingest.PaceOff {
		return nil, errors.New("-pace with -nodes: release pacing is measured on the single-node path")
	}
	if opts.killNode >= opts.nodes {
		return nil, fmt.Errorf("-kill-node %d: only %d nodes", opts.killNode, opts.nodes)
	}
	if opts.burst < 0 || opts.conns < 0 {
		return nil, errors.New("-burst and -conns must be >= 0")
	}

	var ver *verifier
	if opts.verify {
		ver = newVerifier(opts.sensors, opts.frames, opts.frameBytes)
	}
	reg := metrics.NewRegistry()
	var gotFrames, gotBytes atomic.Int64

	// The gateway holds two descriptors per proxied sensor and each node one
	// more, so its connection cap tracks the fleet's duty cycle, not the
	// fleet size.
	maxConns := 4 * opts.conns
	if opts.conns == 0 {
		maxConns = 2 * opts.sensors
	}
	cl, err := cluster.New(cluster.Config{
		Nodes: opts.nodes,
		NewNode: func(i int) cluster.NodeSpec {
			return cluster.NodeSpec{Server: ingest.ServerConfig{
				Handler: ingest.HandlerFuncs{
					OpenFunc: func(sensorID, delivered int) (ingest.Session, error) {
						return &loadSession{
							total: opts.frames, sensorID: sensorID, ver: ver,
							frames: &gotFrames, bytes: &gotBytes,
						}, nil
					},
				},
				Shards:          opts.shards,
				WorkersPerShard: opts.workers,
				QueueDepth:      opts.queue,
				IOTimeout:       opts.ioTimeout,
				Metrics:         reg,
			}}
		},
		MaxConns:  maxConns,
		IOTimeout: opts.ioTimeout,
		Metrics:   reg,
	})
	if err != nil {
		return nil, err
	}
	if err := cl.Start("127.0.0.1:0"); err != nil {
		return nil, fmt.Errorf("start cluster: %w", err)
	}
	addr := cl.Addr().String()

	ctx, cancel := context.WithTimeout(context.Background(), opts.runTimeout)
	defer cancel()

	// The kill watcher fires once the fleet has delivered the requested
	// fraction of its frames, so the node dies with sessions mid-stream.
	var killAt atomic.Int64
	killAt.Store(-1)
	killDone := make(chan struct{})
	if opts.killNode >= 0 {
		target := int64(float64(opts.sensors*opts.frames) * opts.killAtFrac)
		go func() {
			defer close(killDone)
			for gotFrames.Load() < target {
				select {
				case <-ctx.Done():
					return
				case <-time.After(time.Millisecond):
				}
			}
			at := gotFrames.Load()
			if err := cl.KillNode(opts.killNode); err != nil {
				log.Printf("ageload: kill node %d: %v", opts.killNode, err)
				return
			}
			killAt.Store(at)
			log.Printf("ageload: killed node %d at %d delivered frames", opts.killNode, at)
		}()
	} else {
		close(killDone)
	}

	var sem chan struct{}
	if opts.conns > 0 {
		sem = make(chan struct{}, opts.conns)
	}
	durs := make([]time.Duration, opts.sensors)
	errs := make([]error, opts.sensors)
	var softRejects, reconnects atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < opts.sensors; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			client := ingest.NewClient(ingest.ClientConfig{
				Addr:              addr,
				SensorID:          id,
				IOTimeout:         opts.ioTimeout,
				DialAttempts:      6,
				RejectAttempts:    opts.rejectAttempts,
				ReconnectAttempts: opts.reconnects,
				WriteBatch:        opts.writeBatch,
				Metrics:           reg,
			})
			var src ingest.FrameSource = &genSource{
				sensorID: id, total: opts.frames, buf: make([]byte, opts.frameBytes),
			}
			if opts.burst > 0 {
				src = &burstSource{FrameSource: src, limit: opts.burst}
			}
			t0 := time.Now()
			for {
				if sem != nil {
					select {
					case sem <- struct{}{}:
					case <-ctx.Done():
						errs[id] = ctx.Err()
						return
					}
				}
				stats, err := client.Run(ctx, src)
				if sem != nil {
					<-sem
				}
				softRejects.Add(int64(stats.SoftRejects))
				reconnects.Add(int64(stats.Reconnects))
				if errors.Is(err, errBurstPause) {
					continue // rejoin the queue; the next hello resumes
				}
				durs[id] = time.Since(t0)
				errs[id] = err
				return
			}
		}(i)
	}
	wg.Wait()
	wall := time.Since(start)
	<-killDone

	drainCtx, drainCancel := context.WithTimeout(context.Background(), 2*opts.ioTimeout)
	defer drainCancel()
	if err := cl.Drain(drainCtx); err != nil {
		return nil, fmt.Errorf("drain cluster: %w", err)
	}

	snap := reg.Snapshot()
	rep := &report{
		Sensors:         opts.sensors,
		FramesPerSensor: opts.frames,
		FrameBytes:      opts.frameBytes,
		Shards:          opts.shards,
		WorkersPerShard: opts.workers,
		QueueDepth:      opts.queue,
		WriteBatch:      opts.writeBatch,
		EncodeMode:      opts.encode,
		WallSeconds:     wall.Seconds(),
		DeliveredFrames: gotFrames.Load(),
		SoftRejects:     softRejects.Load(),
		Reconnects:      reconnects.Load(),
		Metrics:         snap,
	}
	var okDurs []time.Duration
	for i, err := range errs {
		if err != nil {
			rep.Failed++
			if rep.Failed <= 3 {
				log.Printf("ageload: sensor %d: %v", i, err)
			}
			continue
		}
		rep.Completed++
		okDurs = append(okDurs, durs[i])
	}
	rep.SessionLatency = summarize(okDurs)
	if wall > 0 {
		rep.FramesPerSec = float64(gotFrames.Load()) / wall.Seconds()
		rep.MBPerSec = float64(gotBytes.Load()) / wall.Seconds() / 1e6
	}
	cr := &clusterReport{
		Nodes:            opts.nodes,
		KilledNode:       opts.killNode,
		ConnCap:          opts.conns,
		BurstFrames:      opts.burst,
		Routed:           snap.Counters["cluster.routed"],
		Migrations:       snap.Counters["cluster.migrations"],
		GatewayRejects:   snap.Counters["cluster.rejected"],
		NodeDialFailures: snap.Counters["cluster.node_dial_failures"],
		LocatorEvicted:   snap.Counters["cluster.locator_evicted"],
		Verified:         ver != nil,
	}
	if at := killAt.Load(); at >= 0 {
		cr.KillAtFrames = at
	}
	if ver != nil {
		cr.MissingFrames = ver.missing()
		cr.MismatchedFrames = ver.mismatched.Load()
		cr.DuplicateFrames = ver.duplicates.Load()
	}
	rep.Cluster = cr
	return rep, nil
}

// stagerOrNil avoids handing the server a non-nil interface wrapping a nil
// engine, which would re-enable the tap on every frame.
func stagerOrNil(eng *projection.Engine) ingest.Stager {
	if eng == nil {
		return nil
	}
	return eng
}
