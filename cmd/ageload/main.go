// Command ageload drives a synthetic sensor fleet against the ingest server
// to measure sustained throughput and latency under high concurrency. Every
// sensor is a real ingest.Client on its own TCP connection streaming
// fixed-size frames; the server runs the production shard/queue/backpressure
// path, so overload shows up as typed soft rejects (and bounded memory)
// rather than goroutine pileups.
//
// Usage:
//
//	ageload -sensors 1000 -frames 20 -frame-bytes 64 -out BENCH_ingest.json
//	ageload -sensors 2000 -shards 8 -workers 32 -queue 64
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ingest"
	"repro/internal/metrics"
)

// loadSession discards frames, counting them. One exists per accepted
// connection; the shared counters aggregate across the whole run.
type loadSession struct {
	total  int
	frames *atomic.Int64
	bytes  *atomic.Int64
}

func (s *loadSession) Total() int { return s.total }

func (s *loadSession) Frame(index int, msg []byte) error {
	s.frames.Add(1)
	s.bytes.Add(int64(len(msg)))
	return nil
}

func (s *loadSession) Close(err error) {}

// genSource synthesizes one sensor's frames on demand: a single reused
// buffer stamped with the sensor and frame index, so memory stays flat no
// matter how large the run is. Seek just repositions the counter — the
// content of frame i is a pure function of (sensor, i), which is exactly
// the resume contract.
type genSource struct {
	sensorID int
	total    int
	next     int
	buf      []byte
}

func (g *genSource) Total() int            { return g.total }
func (g *genSource) Seek(resume int) error { g.next = resume; return nil }

func (g *genSource) Next(ctx context.Context) ([]byte, error) {
	for i := range g.buf {
		g.buf[i] = byte(g.sensorID*31 + g.next*7 + i)
	}
	g.next++
	return g.buf, nil
}

// percentiles summarizes a latency distribution in milliseconds.
type percentiles struct {
	P50 float64 `json:"p50_ms"`
	P90 float64 `json:"p90_ms"`
	P99 float64 `json:"p99_ms"`
	Max float64 `json:"max_ms"`
}

func summarize(durs []time.Duration) percentiles {
	if len(durs) == 0 {
		return percentiles{}
	}
	sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
	at := func(p float64) float64 {
		idx := int(p*float64(len(durs))+0.5) - 1
		if idx < 0 {
			idx = 0
		}
		if idx >= len(durs) {
			idx = len(durs) - 1
		}
		return float64(durs[idx]) / float64(time.Millisecond)
	}
	return percentiles{
		P50: at(0.50),
		P90: at(0.90),
		P99: at(0.99),
		Max: float64(durs[len(durs)-1]) / float64(time.Millisecond),
	}
}

// report is the -out JSON payload.
type report struct {
	Sensors         int `json:"sensors"`
	FramesPerSensor int `json:"frames_per_sensor"`
	FrameBytes      int `json:"frame_bytes"`
	Shards          int `json:"shards"`
	WorkersPerShard int `json:"workers_per_shard"`
	QueueDepth      int `json:"queue_depth"`

	WallSeconds    float64     `json:"wall_seconds"`
	FramesPerSec   float64     `json:"frames_per_sec"`
	MBPerSec       float64     `json:"mb_per_sec"`
	SessionLatency percentiles `json:"session_latency"`

	Completed   int   `json:"completed_sensors"`
	Failed      int   `json:"failed_sensors"`
	SoftRejects int64 `json:"soft_rejects"`
	Reconnects  int64 `json:"reconnects"`

	Metrics metrics.Snapshot `json:"metrics"`
}

func main() {
	log.SetFlags(0)
	var (
		sensors    = flag.Int("sensors", 1000, "concurrent sensors to run")
		frames     = flag.Int("frames", 20, "frames each sensor streams")
		frameBytes = flag.Int("frame-bytes", 64, "payload bytes per frame")

		shards  = flag.Int("shards", 4, "server accept shards")
		workers = flag.Int("workers", 64, "workers per shard (concurrent sessions = shards*workers)")
		queue   = flag.Int("queue", 128, "per-shard pending-connection queue depth")

		ioTimeout      = flag.Duration("io-timeout", 5*time.Second, "per-frame read/write deadline")
		rejectAttempts = flag.Int("reject-attempts", 64, "client budget for transient server rejects")
		reconnects     = flag.Int("reconnect-attempts", 2, "client budget for redial+resume after a dropped link")
		runTimeout     = flag.Duration("run-timeout", 2*time.Minute, "whole-run bound")
		out            = flag.String("out", "BENCH_ingest.json", "write the throughput/latency report to this JSON file (empty = skip)")
	)
	flag.Parse()
	if *sensors <= 0 || *frames <= 0 || *frameBytes <= 0 {
		log.Fatal("ageload: -sensors, -frames, and -frame-bytes must be positive")
	}

	reg := metrics.NewRegistry()
	var gotFrames, gotBytes atomic.Int64
	srv, err := ingest.NewServer(ingest.ServerConfig{
		Handler: ingest.HandlerFuncs{
			OpenFunc: func(sensorID, delivered int) (ingest.Session, error) {
				return &loadSession{total: *frames, frames: &gotFrames, bytes: &gotBytes}, nil
			},
		},
		Shards:          *shards,
		WorkersPerShard: *workers,
		QueueDepth:      *queue,
		IOTimeout:       *ioTimeout,
		Metrics:         reg,
	})
	if err != nil {
		log.Fatalf("ageload: %v", err)
	}
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		log.Fatalf("ageload: listen: %v", err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve() }()

	ctx, cancel := context.WithTimeout(context.Background(), *runTimeout)
	defer cancel()

	durs := make([]time.Duration, *sensors)
	errs := make([]error, *sensors)
	var softRejects, reconnectCount atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < *sensors; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			client := ingest.NewClient(ingest.ClientConfig{
				Addr:              srv.Addr().String(),
				SensorID:          id,
				IOTimeout:         *ioTimeout,
				DialAttempts:      6,
				RejectAttempts:    *rejectAttempts,
				ReconnectAttempts: *reconnects,
				Metrics:           reg,
			})
			src := &genSource{sensorID: id, total: *frames, buf: make([]byte, *frameBytes)}
			t0 := time.Now()
			stats, err := client.Run(ctx, src)
			durs[id] = time.Since(t0)
			errs[id] = err
			softRejects.Add(int64(stats.SoftRejects))
			reconnectCount.Add(int64(stats.Reconnects))
		}(i)
	}
	wg.Wait()
	wall := time.Since(start)

	drainCtx, drainCancel := context.WithTimeout(context.Background(), 2*(*ioTimeout))
	defer drainCancel()
	if err := srv.Drain(drainCtx); err != nil {
		log.Fatalf("ageload: drain: %v", err)
	}
	if err := <-serveErr; err != nil && !errors.Is(err, ingest.ErrClosed) {
		log.Fatalf("ageload: serve: %v", err)
	}

	rep := report{
		Sensors:         *sensors,
		FramesPerSensor: *frames,
		FrameBytes:      *frameBytes,
		Shards:          *shards,
		WorkersPerShard: *workers,
		QueueDepth:      *queue,
		WallSeconds:     wall.Seconds(),
		SoftRejects:     softRejects.Load(),
		Reconnects:      reconnectCount.Load(),
		Metrics:         reg.Snapshot(),
	}
	var okDurs []time.Duration
	for i, err := range errs {
		if err != nil {
			rep.Failed++
			if rep.Failed <= 3 {
				log.Printf("ageload: sensor %d: %v", i, err)
			}
			continue
		}
		rep.Completed++
		okDurs = append(okDurs, durs[i])
	}
	rep.SessionLatency = summarize(okDurs)
	if wall > 0 {
		rep.FramesPerSec = float64(gotFrames.Load()) / wall.Seconds()
		rep.MBPerSec = float64(gotBytes.Load()) / wall.Seconds() / 1e6
	}

	fmt.Printf("ageload: %d/%d sensors completed, %d frames (%.0f frames/s, %.2f MB/s) in %.2fs\n",
		rep.Completed, rep.Sensors, gotFrames.Load(), rep.FramesPerSec, rep.MBPerSec, rep.WallSeconds)
	fmt.Printf("ageload: session latency p50 %.1fms p90 %.1fms p99 %.1fms max %.1fms; %d soft rejects, %d reconnects\n",
		rep.SessionLatency.P50, rep.SessionLatency.P90, rep.SessionLatency.P99, rep.SessionLatency.Max,
		rep.SoftRejects, rep.Reconnects)

	if *out != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			log.Fatalf("ageload: report: %v", err)
		}
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			log.Fatalf("ageload: report: %v", err)
		}
		fmt.Printf("ageload: wrote %s\n", *out)
	}
	if rep.Failed > 0 {
		log.Fatalf("ageload: %d sensors failed", rep.Failed)
	}
}
