package main

import (
	"bytes"
	"context"
	"errors"
	"math"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/fixedpoint"
	"repro/internal/ingest"
)

// TestSummarizeLeavesInputUnsorted is the regression test for summarize
// reordering the caller's slice: percentile computation must not disturb
// index-aligned latency bookkeeping.
func TestSummarizeLeavesInputUnsorted(t *testing.T) {
	durs := []time.Duration{
		9 * time.Millisecond, 1 * time.Millisecond, 5 * time.Millisecond,
		3 * time.Millisecond, 7 * time.Millisecond,
	}
	orig := append([]time.Duration(nil), durs...)
	p := summarize(durs)
	for i := range durs {
		if durs[i] != orig[i] {
			t.Fatalf("summarize reordered its input: %v, want %v", durs, orig)
		}
	}
	if p.Max != 9 {
		t.Errorf("max = %vms, want 9", p.Max)
	}
	if p.P50 != 5 {
		t.Errorf("p50 = %vms, want 5", p.P50)
	}
}

// TestGenSourceHonorsCancellation is the regression test for genSource.Next
// ignoring its context: a cancelled run must stop producing frames instead
// of spinning until the transport notices.
func TestGenSourceHonorsCancellation(t *testing.T) {
	g := &genSource{sensorID: 1, total: 10, buf: make([]byte, 32)}
	ctx, cancel := context.WithCancel(context.Background())
	if _, err := g.Next(ctx); err != nil {
		t.Fatalf("live context: %v", err)
	}
	cancel()
	if _, err := g.Next(ctx); err == nil {
		t.Fatal("Next returned a frame after cancellation")
	}
	if g.next != 1 {
		t.Errorf("cancelled Next advanced the cursor: next = %d, want 1", g.next)
	}
}

// TestEncSourceResumeContract pins the FrameSource resume contract for the
// encoding source: frame i's payload must be a pure function of (sensor, i),
// so a Seek past delivered frames reproduces the identical byte stream, and
// distinct sensors or frames must differ.
func TestEncSourceResumeContract(t *testing.T) {
	cfg := core.Config{
		T: 50, D: 6,
		Format:      fixedpoint.Format{Width: 16, NonFrac: 3},
		TargetBytes: 64,
	}
	mk := func(sensor int) *encSource {
		enc, err := core.NewAGE(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return newEncSource(sensor, 12, 5, enc, cfg)
	}
	ctx := context.Background()
	a := mk(3)
	straight := make([][]byte, 12)
	for i := range straight {
		msg, err := a.Next(ctx)
		if err != nil {
			t.Fatal(err)
		}
		straight[i] = append([]byte(nil), msg...)
		if len(msg) != cfg.TargetBytes {
			t.Fatalf("frame %d is %dB, want the fixed %dB", i, len(msg), cfg.TargetBytes)
		}
	}
	b := mk(3)
	if err := b.Seek(7); err != nil {
		t.Fatal(err)
	}
	for i := 7; i < 12; i++ {
		msg, err := b.Next(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(msg, straight[i]) {
			t.Fatalf("frame %d after Seek differs from the straight run", i)
		}
	}
	other := mk(4)
	msg, err := other.Next(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(msg, straight[0]) {
		t.Error("different sensors produced identical frame 0")
	}
	if bytes.Equal(straight[0], straight[1]) {
		t.Error("consecutive frames identical; generator is not frame-dependent")
	}
	ctx2, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := mk(5).Next(ctx2); err == nil {
		t.Error("encSource.Next ignored cancellation")
	}
}

// loadTestOptions is a small, fast run through the full client/server path.
func loadTestOptions() loadOptions {
	return loadOptions{
		sensors: 8, frames: 10, frameBytes: 48,
		shards: 2, workers: 8, queue: 16,
		writeBatch: 4, encode: "none",
		ioTimeout: 2 * time.Second, rejectAttempts: 16,
		reconnects: 2, runTimeout: 30 * time.Second,
	}
}

// TestRunLoadPacedEndToEnd drives the whole ageload path — real server, real
// clients, release pacer, dummy cover traffic — and checks the report's
// pacer accounting against the run geometry. With a 1.5ms generation gap
// against a 1ms release interval, generation is the bottleneck: every real
// frame still arrives (delivery identity) and the skipped slots carry
// dummies.
func TestRunLoadPacedEndToEnd(t *testing.T) {
	opts := loadTestOptions()
	opts.pace = ingest.PaceConstant
	opts.paceInterval = time.Millisecond
	opts.genGap = 1500 * time.Microsecond

	rep, err := runLoad(opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed != 0 || rep.Completed != opts.sensors {
		t.Fatalf("completed %d/%d, %d failed", rep.Completed, opts.sensors, rep.Failed)
	}
	want := int64(opts.sensors * opts.frames)
	if rep.DeliveredFrames != want {
		t.Errorf("delivered %d frames, want %d", rep.DeliveredFrames, want)
	}
	p := rep.Pacer
	if p == nil {
		t.Fatal("paced run produced no pacer report")
	}
	if p.Mode != "constant" {
		t.Errorf("pacer mode %q, want constant", p.Mode)
	}
	if p.RealFrames != want {
		t.Errorf("pacer counted %d real frames, want %d", p.RealFrames, want)
	}
	if p.DummyFrames <= 0 {
		t.Error("generation slower than release sent no cover traffic")
	}
	if p.DummyBytes != p.DummyFrames*int64(opts.frameBytes+1) {
		t.Errorf("dummy bytes %d, want %d frames x %dB marked", p.DummyBytes, p.DummyFrames, opts.frameBytes+1)
	}
	if p.GoodputPct <= 0 || p.GoodputPct >= 100 {
		t.Errorf("goodput = %.1f%%, want in (0, 100)", p.GoodputPct)
	}
	if p.MeanAoIMS <= 0 || p.MaxAoIMS < p.MeanAoIMS {
		t.Errorf("AoI accounting: mean %.3fms max %.3fms", p.MeanAoIMS, p.MaxAoIMS)
	}
}

// TestRunLoadPacedEncodeMode runs the pacer over real encoded payloads: the
// in-payload marker must wrap the production encoder's frames without
// corrupting delivery.
func TestRunLoadPacedEncodeMode(t *testing.T) {
	opts := loadTestOptions()
	opts.sensors, opts.frames, opts.frameBytes = 4, 8, 64
	opts.encode = "age"
	opts.pace = ingest.PaceJitter
	opts.paceInterval = time.Millisecond
	opts.paceJitter = 0.4
	opts.genGap = 1500 * time.Microsecond

	rep, err := runLoad(opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed != 0 {
		t.Fatalf("%d sensors failed", rep.Failed)
	}
	if want := int64(opts.sensors * opts.frames); rep.DeliveredFrames != want {
		t.Errorf("delivered %d frames, want %d", rep.DeliveredFrames, want)
	}
	if rep.Pacer == nil || rep.Pacer.DummyFrames <= 0 {
		t.Error("jitter pacing over encoded frames sent no cover traffic")
	}
}

// TestRunLoadUnpacedHasNoPacerReport pins the report shape the ingest bench
// gate relies on: without -pace the pacer section is absent, so the
// committed BENCH_ingest baseline stays comparable.
func TestRunLoadUnpacedHasNoPacerReport(t *testing.T) {
	opts := loadTestOptions()
	rep, err := runLoad(opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed != 0 {
		t.Fatalf("%d sensors failed", rep.Failed)
	}
	if rep.Pacer != nil {
		t.Errorf("unpaced run produced a pacer report: %+v", rep.Pacer)
	}
	if want := int64(opts.sensors * opts.frames); rep.DeliveredFrames != want {
		t.Errorf("delivered %d frames, want %d", rep.DeliveredFrames, want)
	}
}

// TestRunLoadProjectedEndToEnd runs the streaming pipeline on the load
// path: every delivered frame is decoded through the production codec,
// staged, and projected, and the report's projection section reflects full
// coverage.
func TestRunLoadProjectedEndToEnd(t *testing.T) {
	opts := loadTestOptions()
	opts.sensors, opts.frames, opts.frameBytes = 4, 8, 64
	opts.encode = "standard"
	opts.project = true
	opts.projectWindow = 16

	rep, err := runLoad(opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed != 0 {
		t.Fatalf("%d sensors failed", rep.Failed)
	}
	pr := rep.Projection
	if pr == nil {
		t.Fatal("projected run produced no projection report")
	}
	want := int64(opts.sensors * opts.frames)
	if pr.StagedRecords != want {
		t.Errorf("staged %d records, want %d", pr.StagedRecords, want)
	}
	if pr.DecodeErrors != 0 {
		t.Errorf("%d decode errors through the production codec", pr.DecodeErrors)
	}
	if pr.CoveragePct != 100 {
		t.Errorf("coverage = %.1f%%, want 100", pr.CoveragePct)
	}
	if pr.Watermark != opts.frames {
		t.Errorf("watermark = %d, want %d", pr.Watermark, opts.frames)
	}
	// Synthetic labels alternate, so half the frames are detections.
	if pr.LabelDetections != want/2 {
		t.Errorf("label detections = %d, want %d", pr.LabelDetections, want/2)
	}
	// The adaptive workload doubles the sample count on labeled frames, and
	// standard encoding passes that straight through to the wire: the live
	// monitor must read two sizes split evenly (1 bit of entropy) in perfect
	// correlation with the labels (NMI 1).
	if pr.DistinctSizes != 2 {
		t.Errorf("distinct sizes = %d, want 2 under standard encoding", pr.DistinctSizes)
	}
	if math.Abs(pr.SizeEntropyBits-1) > 1e-9 {
		t.Errorf("size entropy = %.6f bits, want 1", pr.SizeEntropyBits)
	}
	if math.Abs(pr.NMI-1) > 1e-9 {
		t.Errorf("NMI(size,label) = %.6f, want 1", pr.NMI)
	}
}

// TestRunLoadProjectedPaced checks the tap unwraps the pacer's in-payload
// marker before decoding: cover traffic never reaches the stage, and the
// real frames decode cleanly.
func TestRunLoadProjectedPaced(t *testing.T) {
	opts := loadTestOptions()
	opts.sensors, opts.frames, opts.frameBytes = 3, 6, 64
	opts.encode = "age"
	opts.project = true
	opts.pace = ingest.PaceConstant
	opts.paceInterval = time.Millisecond
	opts.genGap = 1500 * time.Microsecond

	rep, err := runLoad(opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed != 0 {
		t.Fatalf("%d sensors failed", rep.Failed)
	}
	pr := rep.Projection
	if pr == nil {
		t.Fatal("no projection report")
	}
	want := int64(opts.sensors * opts.frames)
	if pr.StagedRecords != want || pr.DecodeErrors != 0 {
		t.Errorf("staged %d (want %d), %d decode errors", pr.StagedRecords, want, pr.DecodeErrors)
	}
	// AGE standardizes message sizes, so the live monitor must measure
	// zero size entropy (and therefore zero NMI) even with varying labels.
	if pr.DistinctSizes != 1 || pr.SizeEntropyBits != 0 || pr.NMI != 0 {
		t.Errorf("AGE leak figures: %d sizes, %.3f bits, NMI %.4f; want 1/0/0",
			pr.DistinctSizes, pr.SizeEntropyBits, pr.NMI)
	}
}

// TestRunLoadUnprojectedHasNoProjectionReport pins the report shape for the
// unprojected bench baselines.
func TestRunLoadUnprojectedHasNoProjectionReport(t *testing.T) {
	opts := loadTestOptions()
	rep, err := runLoad(opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Projection != nil {
		t.Errorf("unprojected run produced a projection report: %+v", rep.Projection)
	}
}

// TestBurstSourceDutyCycle pins the per-connection frame budget: limit
// frames flow, then the terminal pause sentinel, and the Seek a reconnect
// performs resets the budget without disturbing the resume position.
func TestBurstSourceDutyCycle(t *testing.T) {
	b := &burstSource{
		FrameSource: &genSource{sensorID: 2, total: 10, buf: make([]byte, 8)},
		limit:       3,
	}
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if _, err := b.Next(ctx); err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
	}
	_, err := b.Next(ctx)
	if !errors.Is(err, errBurstPause) {
		t.Fatalf("4th frame err = %v, want burst pause", err)
	}
	if !ingest.IsTerminal(err) {
		t.Fatal("burst pause is not terminal; it would burn the reconnect budget")
	}
	if err := b.Seek(3); err != nil {
		t.Fatal(err)
	}
	msg, err := b.Next(ctx)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]byte, 8)
	for i := range want {
		want[i] = byte(2*31 + 3*7 + i)
	}
	if !bytes.Equal(msg, want) {
		t.Fatal("frame after Seek is not frame 3; the budget reset moved the cursor")
	}
}

// TestVerifierCatchesLossAndCorruption exercises the byte-exact checker the
// cluster acceptance run relies on: clean frames pass once, re-deliveries
// count as duplicates, corrupt bytes as mismatches, and undelivered pairs as
// missing.
func TestVerifierCatchesLossAndCorruption(t *testing.T) {
	frame := func(sensor, index int, n int) []byte {
		buf := make([]byte, n)
		for i := range buf {
			buf[i] = byte(sensor*31 + index*7 + i)
		}
		return buf
	}
	v := newVerifier(2, 70, 16) // >64 frames crosses a bitset word boundary
	for idx := 0; idx < 70; idx++ {
		v.record(0, idx, frame(0, idx, 16))
	}
	v.record(0, 69, frame(0, 69, 16)) // idempotent re-delivery
	v.record(1, 0, frame(1, 0, 16))
	bad := frame(1, 1, 16)
	bad[7] ^= 0x80
	v.record(1, 1, bad)               // corrupted payload
	v.record(1, 2, frame(1, 2, 15))   // truncated payload
	v.record(5, 0, frame(5, 0, 16))   // unknown sensor
	v.record(1, 99, frame(1, 99, 16)) // out-of-range frame
	if got := v.duplicates.Load(); got != 1 {
		t.Errorf("duplicates = %d, want 1", got)
	}
	if got := v.mismatched.Load(); got != 4 {
		t.Errorf("mismatched = %d, want 4", got)
	}
	// Sensor 1 delivered only frame 0 cleanly: 69 of its frames are missing.
	if got := v.missing(); got != 69 {
		t.Errorf("missing = %d, want 69", got)
	}
}

// TestRunClusterKillNodeZeroLoss is the acceptance path in miniature: a
// duty-cycled fleet over 3 nodes, one node killed mid-run, and the verifier
// confirming every stream arrived byte-exact despite the lost session state.
func TestRunClusterKillNodeZeroLoss(t *testing.T) {
	opts := loadTestOptions()
	opts.sensors, opts.frames = 24, 12
	opts.nodes = 3
	opts.conns = 8
	opts.burst = 4
	opts.killNode = 1
	opts.killAtFrac = 0.3
	opts.verify = true
	opts.reconnects = 8
	opts.rejectAttempts = 64

	rep, err := runCluster(opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed != 0 || rep.Completed != opts.sensors {
		t.Fatalf("completed %d/%d, %d failed", rep.Completed, opts.sensors, rep.Failed)
	}
	cr := rep.Cluster
	if cr == nil {
		t.Fatal("cluster run produced no cluster report")
	}
	if !cr.Verified {
		t.Fatal("verifier did not run")
	}
	if cr.MissingFrames != 0 || cr.MismatchedFrames != 0 {
		t.Fatalf("data loss: %d missing, %d mismatched frames", cr.MissingFrames, cr.MismatchedFrames)
	}
	if cr.KilledNode != 1 || cr.KillAtFrames == 0 {
		t.Fatalf("kill did not fire: killed node %d at %d frames", cr.KilledNode, cr.KillAtFrames)
	}
	if cr.Routed == 0 {
		t.Error("gateway routed no connections")
	}
	// Every frame must have arrived at least once; the kill makes extra
	// deliveries legal (duplicates), never fewer.
	want := int64(opts.sensors * opts.frames)
	if rep.DeliveredFrames < want {
		t.Errorf("delivered %d frames, want >= %d", rep.DeliveredFrames, want)
	}
	if rep.DeliveredFrames != want+cr.DuplicateFrames {
		t.Errorf("delivered %d != %d assigned + %d duplicates",
			rep.DeliveredFrames, want, cr.DuplicateFrames)
	}
}

// TestRunClusterRejectsSingleNodeOnlyFlags pins the flag-compatibility
// surface: the cluster path refuses modes it cannot honor instead of
// silently dropping them.
func TestRunClusterRejectsSingleNodeOnlyFlags(t *testing.T) {
	base := loadTestOptions()
	base.nodes = 3
	for name, mut := range map[string]func(*loadOptions){
		"project":     func(o *loadOptions) { o.project = true },
		"pace":        func(o *loadOptions) { o.pace = ingest.PaceConstant },
		"encode":      func(o *loadOptions) { o.encode = "age" },
		"kill-range":  func(o *loadOptions) { o.killNode = 3 },
		"single-node": func(o *loadOptions) { o.nodes = 1 },
		"neg-burst":   func(o *loadOptions) { o.burst = -1 },
	} {
		opts := base
		mut(&opts)
		if _, err := runCluster(opts); err == nil {
			t.Errorf("%s: runCluster accepted an incompatible option set", name)
		}
	}
}
