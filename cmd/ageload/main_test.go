package main

import (
	"bytes"
	"context"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/fixedpoint"
)

// TestSummarizeLeavesInputUnsorted is the regression test for summarize
// reordering the caller's slice: percentile computation must not disturb
// index-aligned latency bookkeeping.
func TestSummarizeLeavesInputUnsorted(t *testing.T) {
	durs := []time.Duration{
		9 * time.Millisecond, 1 * time.Millisecond, 5 * time.Millisecond,
		3 * time.Millisecond, 7 * time.Millisecond,
	}
	orig := append([]time.Duration(nil), durs...)
	p := summarize(durs)
	for i := range durs {
		if durs[i] != orig[i] {
			t.Fatalf("summarize reordered its input: %v, want %v", durs, orig)
		}
	}
	if p.Max != 9 {
		t.Errorf("max = %vms, want 9", p.Max)
	}
	if p.P50 != 5 {
		t.Errorf("p50 = %vms, want 5", p.P50)
	}
}

// TestGenSourceHonorsCancellation is the regression test for genSource.Next
// ignoring its context: a cancelled run must stop producing frames instead
// of spinning until the transport notices.
func TestGenSourceHonorsCancellation(t *testing.T) {
	g := &genSource{sensorID: 1, total: 10, buf: make([]byte, 32)}
	ctx, cancel := context.WithCancel(context.Background())
	if _, err := g.Next(ctx); err != nil {
		t.Fatalf("live context: %v", err)
	}
	cancel()
	if _, err := g.Next(ctx); err == nil {
		t.Fatal("Next returned a frame after cancellation")
	}
	if g.next != 1 {
		t.Errorf("cancelled Next advanced the cursor: next = %d, want 1", g.next)
	}
}

// TestEncSourceResumeContract pins the FrameSource resume contract for the
// encoding source: frame i's payload must be a pure function of (sensor, i),
// so a Seek past delivered frames reproduces the identical byte stream, and
// distinct sensors or frames must differ.
func TestEncSourceResumeContract(t *testing.T) {
	cfg := core.Config{
		T: 50, D: 6,
		Format:      fixedpoint.Format{Width: 16, NonFrac: 3},
		TargetBytes: 64,
	}
	mk := func(sensor int) *encSource {
		enc, err := core.NewAGE(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return newEncSource(sensor, 12, 5, enc, cfg)
	}
	ctx := context.Background()
	a := mk(3)
	straight := make([][]byte, 12)
	for i := range straight {
		msg, err := a.Next(ctx)
		if err != nil {
			t.Fatal(err)
		}
		straight[i] = append([]byte(nil), msg...)
		if len(msg) != cfg.TargetBytes {
			t.Fatalf("frame %d is %dB, want the fixed %dB", i, len(msg), cfg.TargetBytes)
		}
	}
	b := mk(3)
	if err := b.Seek(7); err != nil {
		t.Fatal(err)
	}
	for i := 7; i < 12; i++ {
		msg, err := b.Next(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(msg, straight[i]) {
			t.Fatalf("frame %d after Seek differs from the straight run", i)
		}
	}
	other := mk(4)
	msg, err := other.Next(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(msg, straight[0]) {
		t.Error("different sensors produced identical frame 0")
	}
	if bytes.Equal(straight[0], straight[1]) {
		t.Error("consecutive frames identical; generator is not frame-dependent")
	}
	ctx2, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := mk(5).Next(ctx2); err == nil {
		t.Error("encSource.Next ignored cancellation")
	}
}
