// Command agesim runs one end-to-end sensor/server simulation — the
// artifact's basic workflow — and reports error, energy, budget compliance,
// and the attacker-visible message-size distribution.
//
// Usage:
//
//	agesim -dataset epilepsy -policy linear -encoder age -rate 0.7
//	agesim -dataset tiselac -policy deviation -encoder padded -cipher aes -socket
//	agesim -dataset activity -encoder age -fleet 20 -io-timeout 2s
//	agesim -fleet 8 -metrics-addr 127.0.0.1:8080 -metrics-hold 30s
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"time"

	"repro/internal/dataset"
	"repro/internal/energy"
	"repro/internal/metrics"
	"repro/internal/policy"
	"repro/internal/seccomm"
	"repro/internal/simulator"
	"repro/internal/stats"
)

func main() {
	log.SetFlags(0)
	var (
		dsName  = flag.String("dataset", "epilepsy", "dataset name (see -list)")
		polName = flag.String("policy", "linear", "uniform | random | linear | deviation | skiprnn")
		encName = flag.String("encoder", "age", "standard | padded | age | single | unshifted | pruned")
		cipher  = flag.String("cipher", "chacha", "chacha | aes")
		rate    = flag.Float64("rate", 0.7, "budget collection rate (0.3 .. 1.0)")
		maxSeq  = flag.Int("max-seq", 96, "sequences to simulate (0 = full dataset)")
		seed    = flag.Int64("seed", 1, "random seed")
		socket  = flag.Bool("socket", false, "run sensor and server over a real TCP loopback socket")
		fleet   = flag.Int("fleet", 0, "run N concurrent sensors against one server (0 = single sensor)")
		list    = flag.Bool("list", false, "list datasets and exit")

		ioTimeout    = flag.Duration("io-timeout", 0, "per-frame read/write deadline in socket/fleet mode (0 = default 5s)")
		dialTimeout  = flag.Duration("dial-timeout", 0, "fleet: single TCP connect attempt bound (0 = default 2s)")
		dialAttempts = flag.Int("dial-attempts", 0, "fleet: connect attempts per sensor with exponential backoff (0 = default 4)")
		runTimeout   = flag.Duration("run-timeout", 0, "fleet: whole-run bound; on expiry the partial result is reported (0 = none)")

		metricsAddr = flag.String("metrics-addr", "", "serve /metrics (snapshot JSON) and /debug/pprof on this address (e.g. 127.0.0.1:8080); observation-only, results are unchanged")
		metricsHold = flag.Duration("metrics-hold", 0, "keep the metrics endpoint up this long after the run finishes (lets scrapers read the final state)")
	)
	flag.Parse()
	if *list {
		for _, n := range dataset.Names() {
			m, _ := dataset.MetaFor(n)
			fmt.Printf("%-12s %6d seqs x %4d steps x %2d features, %2d labels, %v\n",
				n, m.NumSeq, m.SeqLen, m.NumFeatures, m.NumLabels, m.Format)
		}
		return
	}

	data, err := dataset.Load(*dsName, dataset.Options{Seed: *seed, MaxSequences: *maxSeq})
	if err != nil {
		log.Fatal(err)
	}
	pol, err := buildPolicy(*polName, data, *rate, *seed)
	if err != nil {
		log.Fatal(err)
	}
	ck := seccomm.ChaCha20Stream
	if *cipher == "aes" {
		ck = seccomm.AES128Block
	}
	// The registry exists only when observation was asked for; a nil registry
	// keeps every instrument a no-op throughout the pipeline.
	var reg *metrics.Registry
	if *metricsAddr != "" {
		reg = metrics.NewRegistry()
		srv, err := reg.ListenAndServe(*metricsAddr)
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "metrics: serving /metrics and /debug/pprof/ on http://%s\n", srv.Addr)
	}
	cfg := simulator.RunConfig{
		Dataset:   data,
		Policy:    pol,
		Encoder:   simulator.EncoderKind(*encName),
		Cipher:    ck,
		Rate:      *rate,
		Model:     energy.Default(),
		Seed:      *seed,
		IOTimeout: *ioTimeout,
		Metrics:   reg,
	}

	switch {
	case *fleet > 0:
		runFleet(cfg, *fleet, *dsName, *encName, fleetTransport{
			dialTimeout:  *dialTimeout,
			dialAttempts: *dialAttempts,
			ioTimeout:    *ioTimeout,
			runTimeout:   *runTimeout,
		})
	case *socket:
		res, err := simulator.RunOverSocket(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("socket run: %s / %s / %s @ %.0f%%\n", *dsName, *polName, *encName, *rate*100)
		fmt.Printf("MAE: %.4f\n", res.MAE)
		printSizes(res.SizesByLabel, *dsName)
	default:
		res, err := simulator.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("run: %s / %s / %s / %s @ %.0f%% over %d sequences\n",
			*dsName, *polName, *encName, ck, *rate*100, len(res.Seqs))
		fmt.Printf("MAE:            %.4f\n", res.MAE)
		fmt.Printf("weighted MAE:   %.4f\n", res.WeightedMAE)
		fmt.Printf("energy:         %.1f mJ (budget %.1f mJ)\n", res.TotalEnergyMJ, res.BudgetMJ)
		fmt.Printf("violations:     %d\n", res.Violations)
		printSizes(res.SizesByLabel, *dsName)
	}

	if reg != nil {
		fmt.Fprintln(os.Stderr, "final metrics snapshot:")
		if err := reg.Snapshot().WriteJSON(os.Stderr); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintln(os.Stderr)
		if *metricsHold > 0 {
			fmt.Fprintf(os.Stderr, "metrics: holding the endpoint open for %s\n", *metricsHold)
			time.Sleep(*metricsHold)
		}
	}
}

// fleetTransport carries the command-line transport knobs into a FleetConfig.
type fleetTransport struct {
	dialTimeout  time.Duration
	dialAttempts int
	ioTimeout    time.Duration
	runTimeout   time.Duration
}

// runFleet drives N concurrent sensors against one server over real TCP
// loopback connections and reports per-sensor delivery alongside the pooled
// attacker view. Per-sensor failures degrade the run; only setup errors,
// full-fleet failure, or a run timeout abort it.
func runFleet(base simulator.RunConfig, sensors int, dsName, encName string, tr fleetTransport) {
	fcfg := simulator.FleetConfig{
		Base:         base,
		Sensors:      sensors,
		DialTimeout:  tr.dialTimeout,
		DialAttempts: tr.dialAttempts,
		IOTimeout:    tr.ioTimeout,
		Timeout:      tr.runTimeout,
	}
	res, err := simulator.RunFleet(fcfg)
	if err != nil {
		if res == nil {
			log.Fatal(err)
		}
		// Partial result (cancellation or full-fleet failure): report what
		// arrived, then the error.
		defer log.Fatal(err)
	}
	fmt.Printf("fleet run: %s / %s, %d sensors, %d frames delivered, %d sensors failed\n",
		dsName, encName, sensors, res.Messages, res.Failed)
	for _, st := range res.Sensors {
		line := fmt.Sprintf("  sensor %3d: %d/%d frames, %d dial attempt(s), MAE %.4f",
			st.Sensor, st.Delivered, st.Assigned, st.DialAttempts, res.PerSensorMAE[st.Sensor])
		if e := st.Err(); e != "" {
			line += "  [" + e + "]"
		}
		fmt.Println(line)
	}
	for _, u := range res.Unattributed {
		fmt.Printf("  unattributed connection: %s\n", u)
	}
	printSizes(res.SizesByLabel, dsName)
}

func buildPolicy(name string, data *dataset.Dataset, rate float64, seed int64) (policy.Policy, error) {
	if name == "uniform" {
		return policy.NewUniform(rate), nil
	}
	if name == "random" {
		return policy.NewRandom(rate), nil
	}
	n := len(data.Sequences) / 3
	if n < 8 {
		n = len(data.Sequences)
	}
	var train [][][]float64
	for _, s := range data.Sequences[:n] {
		train = append(train, s.Values)
	}
	switch name {
	case "linear", "deviation":
		fit, err := policy.Fit(policy.AdaptiveKind(name), train, rate)
		if err != nil {
			return nil, err
		}
		fmt.Printf("fitted %s threshold %.4f (achieved rate %.2f)\n", name, fit.Threshold, fit.AchievedRate)
		return policy.NewAdaptive(policy.AdaptiveKind(name), fit.Threshold)
	case "skiprnn":
		cfg := policy.DefaultSkipRNNTrainConfig()
		cfg.Seed = seed
		model, err := policy.TrainSkipRNN(train, cfg)
		if err != nil {
			return nil, err
		}
		p, fit := model.FitBias(train, rate)
		fmt.Printf("trained skip RNN; bias %.3f (achieved rate %.2f)\n", fit.Threshold, fit.AchievedRate)
		return p, nil
	default:
		return nil, fmt.Errorf("unknown policy %q", name)
	}
}

func printSizes(byLabel map[int][]int, dsName string) {
	events := dataset.LabelNames(dsName)
	var labels []int
	for l := range byLabel {
		labels = append(labels, l)
	}
	sort.Ints(labels)
	var flatLabels, flatSizes []int
	fmt.Println("attacker-observed message sizes by event:")
	for _, l := range labels {
		xs := make([]float64, len(byLabel[l]))
		for i, s := range byLabel[l] {
			xs[i] = float64(s)
			flatLabels = append(flatLabels, l)
			flatSizes = append(flatSizes, s)
		}
		name := fmt.Sprintf("label %d", l)
		if l < len(events) {
			name = events[l]
		}
		fmt.Printf("  %-14s mean %8.1f B  std %7.2f  n=%d\n", name, stats.Mean(xs), stats.StdDev(xs), len(xs))
	}
	fmt.Printf("NMI(size, event) = %.3f\n", stats.NMI(flatLabels, flatSizes))
}
