// Command agesim runs one end-to-end sensor/server simulation — the
// artifact's basic workflow — and reports error, energy, budget compliance,
// and the attacker-visible message-size distribution.
//
// Usage:
//
//	agesim -dataset epilepsy -policy linear -encoder age -rate 0.7
//	agesim -dataset tiselac -policy deviation -encoder padded -cipher aes -socket
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"

	"repro/internal/dataset"
	"repro/internal/energy"
	"repro/internal/policy"
	"repro/internal/seccomm"
	"repro/internal/simulator"
	"repro/internal/stats"
)

func main() {
	log.SetFlags(0)
	var (
		dsName  = flag.String("dataset", "epilepsy", "dataset name (see -list)")
		polName = flag.String("policy", "linear", "uniform | random | linear | deviation | skiprnn")
		encName = flag.String("encoder", "age", "standard | padded | age | single | unshifted | pruned")
		cipher  = flag.String("cipher", "chacha", "chacha | aes")
		rate    = flag.Float64("rate", 0.7, "budget collection rate (0.3 .. 1.0)")
		maxSeq  = flag.Int("max-seq", 96, "sequences to simulate (0 = full dataset)")
		seed    = flag.Int64("seed", 1, "random seed")
		socket  = flag.Bool("socket", false, "run sensor and server over a real TCP loopback socket")
		list    = flag.Bool("list", false, "list datasets and exit")
	)
	flag.Parse()
	if *list {
		for _, n := range dataset.Names() {
			m, _ := dataset.MetaFor(n)
			fmt.Printf("%-12s %6d seqs x %4d steps x %2d features, %2d labels, %v\n",
				n, m.NumSeq, m.SeqLen, m.NumFeatures, m.NumLabels, m.Format)
		}
		return
	}

	data, err := dataset.Load(*dsName, dataset.Options{Seed: *seed, MaxSequences: *maxSeq})
	if err != nil {
		log.Fatal(err)
	}
	pol, err := buildPolicy(*polName, data, *rate, *seed)
	if err != nil {
		log.Fatal(err)
	}
	ck := seccomm.ChaCha20Stream
	if *cipher == "aes" {
		ck = seccomm.AES128Block
	}
	cfg := simulator.RunConfig{
		Dataset: data,
		Policy:  pol,
		Encoder: simulator.EncoderKind(*encName),
		Cipher:  ck,
		Rate:    *rate,
		Model:   energy.Default(),
		Seed:    *seed,
	}

	if *socket {
		res, err := simulator.RunOverSocket(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("socket run: %s / %s / %s @ %.0f%%\n", *dsName, *polName, *encName, *rate*100)
		fmt.Printf("MAE: %.4f\n", res.MAE)
		printSizes(res.SizesByLabel, *dsName)
		return
	}

	res, err := simulator.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("run: %s / %s / %s / %s @ %.0f%% over %d sequences\n",
		*dsName, *polName, *encName, ck, *rate*100, len(res.Seqs))
	fmt.Printf("MAE:            %.4f\n", res.MAE)
	fmt.Printf("weighted MAE:   %.4f\n", res.WeightedMAE)
	fmt.Printf("energy:         %.1f mJ (budget %.1f mJ)\n", res.TotalEnergyMJ, res.BudgetMJ)
	fmt.Printf("violations:     %d\n", res.Violations)
	printSizes(res.SizesByLabel, *dsName)
}

func buildPolicy(name string, data *dataset.Dataset, rate float64, seed int64) (policy.Policy, error) {
	if name == "uniform" {
		return policy.NewUniform(rate), nil
	}
	if name == "random" {
		return policy.NewRandom(rate), nil
	}
	n := len(data.Sequences) / 3
	if n < 8 {
		n = len(data.Sequences)
	}
	var train [][][]float64
	for _, s := range data.Sequences[:n] {
		train = append(train, s.Values)
	}
	switch name {
	case "linear", "deviation":
		fit, err := policy.Fit(policy.AdaptiveKind(name), train, rate)
		if err != nil {
			return nil, err
		}
		fmt.Printf("fitted %s threshold %.4f (achieved rate %.2f)\n", name, fit.Threshold, fit.AchievedRate)
		return policy.NewAdaptive(policy.AdaptiveKind(name), fit.Threshold)
	case "skiprnn":
		cfg := policy.DefaultSkipRNNTrainConfig()
		cfg.Seed = seed
		model, err := policy.TrainSkipRNN(train, cfg)
		if err != nil {
			return nil, err
		}
		p, fit := model.FitBias(train, rate)
		fmt.Printf("trained skip RNN; bias %.3f (achieved rate %.2f)\n", fit.Threshold, fit.AchievedRate)
		return p, nil
	default:
		return nil, fmt.Errorf("unknown policy %q", name)
	}
}

func printSizes(byLabel map[int][]int, dsName string) {
	events := dataset.LabelNames(dsName)
	var labels []int
	for l := range byLabel {
		labels = append(labels, l)
	}
	sort.Ints(labels)
	var flatLabels, flatSizes []int
	fmt.Println("attacker-observed message sizes by event:")
	for _, l := range labels {
		xs := make([]float64, len(byLabel[l]))
		for i, s := range byLabel[l] {
			xs[i] = float64(s)
			flatLabels = append(flatLabels, l)
			flatSizes = append(flatSizes, s)
		}
		name := fmt.Sprintf("label %d", l)
		if l < len(events) {
			name = events[l]
		}
		fmt.Printf("  %-14s mean %8.1f B  std %7.2f  n=%d\n", name, stats.Mean(xs), stats.StdDev(xs), len(xs))
	}
	fmt.Printf("NMI(size, event) = %.3f\n", stats.NMI(flatLabels, flatSizes))
}
