// Command ageattack mounts the §5.4 message-size attack against one
// configuration and prints the cross-validated accuracy, the majority
// baseline, and the confusion matrix. With -timing it instead mounts the
// inter-frame timing attack on three live ingest links (undefended,
// constant-rate paced, jitter paced) and prints the attack/defense table;
// -assert-defense additionally exits non-zero unless the undefended link
// leaks and the paced links do not, for CI smoke tests.
//
// Usage:
//
//	ageattack -dataset epilepsy -policy linear -encoder standard -rate 0.7
//	ageattack -dataset epilepsy -policy linear -encoder age -rate 0.7
//	ageattack -timing -dataset epilepsy -rate 0.7 -assert-defense
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"time"

	"repro/internal/attack"
	"repro/internal/dataset"
	"repro/internal/energy"
	"repro/internal/experiments"
	"repro/internal/policy"
	"repro/internal/seccomm"
	"repro/internal/simulator"
)

func main() {
	log.SetFlags(0)
	var (
		dsName  = flag.String("dataset", "epilepsy", "dataset name")
		polName = flag.String("policy", "linear", "uniform | linear | deviation")
		encName = flag.String("encoder", "standard", "standard | padded | age")
		rate    = flag.Float64("rate", 0.7, "budget collection rate")
		maxSeq  = flag.Int("max-seq", 96, "sequences to simulate")
		samples = flag.Int("samples", 1000, "attack windows")
		seed    = flag.Int64("seed", 1, "random seed")

		timing    = flag.Bool("timing", false, "mount the inter-frame timing attack on live ingest links")
		sensors   = flag.Int("sensors", 4, "timing: fleet size behind the ingest server")
		interval  = flag.Duration("interval", 4*time.Millisecond, "timing: paced release interval")
		paceJit   = flag.Float64("pace-jitter", 0.3, "timing: jitter fraction for the jittered mode")
		perms     = flag.Int("permutations", 10000, "timing: permutation test iterations")
		assertDef = flag.Bool("assert-defense", false, "timing: exit non-zero unless undefended leaks and paced does not")
	)
	flag.Parse()

	if *timing {
		runTimingAttack(*dsName, *rate, *maxSeq, *samples, *seed,
			*sensors, *interval, *paceJit, *perms, *assertDef)
		return
	}

	data, err := dataset.Load(*dsName, dataset.Options{Seed: *seed, MaxSequences: *maxSeq})
	if err != nil {
		log.Fatal(err)
	}
	var pol policy.Policy
	switch *polName {
	case "uniform":
		pol = policy.NewUniform(*rate)
	case "linear", "deviation":
		var train [][][]float64
		for _, s := range data.Sequences[:len(data.Sequences)/3] {
			train = append(train, s.Values)
		}
		fit, err := policy.Fit(policy.AdaptiveKind(*polName), train, *rate)
		if err != nil {
			log.Fatal(err)
		}
		pol, err = policy.NewAdaptive(policy.AdaptiveKind(*polName), fit.Threshold)
		if err != nil {
			log.Fatal(err)
		}
	default:
		log.Fatalf("unknown policy %q", *polName)
	}

	res, err := simulator.Run(simulator.RunConfig{
		Dataset: data, Policy: pol, Encoder: simulator.EncoderKind(*encName),
		Cipher: seccomm.ChaCha20Stream, Rate: *rate, Model: energy.Default(), Seed: *seed,
	})
	if err != nil {
		log.Fatal(err)
	}

	rng := rand.New(rand.NewSource(*seed))
	atkSamples, err := attack.BuildSamples(res.SizesByLabel, *samples, rng)
	if err != nil {
		log.Fatal(err)
	}
	cv, err := attack.CrossValidate(atkSamples, data.Meta.NumLabels, 5, attack.DefaultAdaBoostConfig(), rng)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("attack on %s / %s / %s @ %.0f%%\n", *dsName, *polName, *encName, *rate*100)
	fmt.Printf("accuracy:  %.1f%% (folds: ", cv.MeanAccuracy*100)
	for i, a := range cv.FoldAccuracies {
		if i > 0 {
			fmt.Print(", ")
		}
		fmt.Printf("%.1f", a*100)
	}
	fmt.Printf(")\nmajority:  %.1f%%\n", cv.Majority*100)
	fmt.Printf("advantage: %.2fx over guessing\n", cv.MeanAccuracy/cv.Majority)

	events := dataset.LabelNames(*dsName)
	fmt.Println("confusion (rows = truth, cols = prediction):")
	fmt.Printf("%-14s", "")
	for c := range cv.Confusion {
		name := fmt.Sprintf("c%d", c)
		if c < len(events) {
			name = events[c]
		}
		fmt.Printf(" %10.10s", name)
	}
	fmt.Println()
	for r, row := range cv.Confusion {
		name := fmt.Sprintf("c%d", r)
		if r < len(events) {
			name = events[r]
		}
		fmt.Printf("%-14.14s", name)
		for _, v := range row {
			fmt.Printf(" %10d", v)
		}
		fmt.Println()
	}
}

// runTimingAttack drives the timing attack/defense evaluation over real
// loopback ingest links and optionally asserts the defense for CI.
func runTimingAttack(dsName string, rate float64, maxSeq, samples int, seed int64,
	sensors int, interval time.Duration, paceJit float64, perms int, assertDef bool) {
	cfg := experiments.DefaultConfig()
	cfg.Seed = seed
	cfg.MaxSequences = maxSeq
	cfg.TrainSequences = maxSeq / 3
	cfg.Rates = []float64{rate}
	cfg.AttackSamples = samples
	cfg.Permutations = perms

	tcfg := experiments.DefaultTimingConfig()
	tcfg.Sensors = sensors
	tcfg.Interval = interval
	tcfg.JitterFrac = paceJit

	res, err := experiments.TimingLeakage(context.Background(), cfg, tcfg, dsName, rate)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.String())

	if !assertDef {
		return
	}
	live, constant := res.Mode("live"), res.Mode("constant")
	if live == nil || constant == nil {
		log.Fatal("assert-defense: missing live or constant row")
	}
	failed := false
	if !live.Significant {
		log.Printf("FAIL: undefended link not significant (NMI %.3f, p %.5f, CI high %.5f) — the timing attack should work",
			live.NMI, live.PValue, live.CIHigh)
		failed = true
	}
	if live.AttackAccuracy < live.Majority+0.2 {
		log.Printf("FAIL: undefended attack accuracy %.3f vs majority %.3f — the timing attack should work",
			live.AttackAccuracy, live.Majority)
		failed = true
	}
	for _, mode := range []string{"constant", "jitter"} {
		if row := res.Mode(mode); row != nil && row.Significant {
			log.Printf("FAIL: %s pacing still significant (NMI %.3f, p %.5f) — the defense should close the channel",
				mode, row.NMI, row.PValue)
			failed = true
		}
	}
	if failed {
		log.Fatal("assert-defense: timing defense check failed")
	}
	fmt.Println("assert-defense: undefended link leaks, paced links do not")
}
