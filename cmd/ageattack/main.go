// Command ageattack mounts the §5.4 message-size attack against one
// configuration and prints the cross-validated accuracy, the majority
// baseline, and the confusion matrix.
//
// Usage:
//
//	ageattack -dataset epilepsy -policy linear -encoder standard -rate 0.7
//	ageattack -dataset epilepsy -policy linear -encoder age -rate 0.7
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"

	"repro/internal/attack"
	"repro/internal/dataset"
	"repro/internal/energy"
	"repro/internal/policy"
	"repro/internal/seccomm"
	"repro/internal/simulator"
)

func main() {
	log.SetFlags(0)
	var (
		dsName  = flag.String("dataset", "epilepsy", "dataset name")
		polName = flag.String("policy", "linear", "uniform | linear | deviation")
		encName = flag.String("encoder", "standard", "standard | padded | age")
		rate    = flag.Float64("rate", 0.7, "budget collection rate")
		maxSeq  = flag.Int("max-seq", 96, "sequences to simulate")
		samples = flag.Int("samples", 1000, "attack windows")
		seed    = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()

	data, err := dataset.Load(*dsName, dataset.Options{Seed: *seed, MaxSequences: *maxSeq})
	if err != nil {
		log.Fatal(err)
	}
	var pol policy.Policy
	switch *polName {
	case "uniform":
		pol = policy.NewUniform(*rate)
	case "linear", "deviation":
		var train [][][]float64
		for _, s := range data.Sequences[:len(data.Sequences)/3] {
			train = append(train, s.Values)
		}
		fit, err := policy.Fit(policy.AdaptiveKind(*polName), train, *rate)
		if err != nil {
			log.Fatal(err)
		}
		pol, err = policy.NewAdaptive(policy.AdaptiveKind(*polName), fit.Threshold)
		if err != nil {
			log.Fatal(err)
		}
	default:
		log.Fatalf("unknown policy %q", *polName)
	}

	res, err := simulator.Run(simulator.RunConfig{
		Dataset: data, Policy: pol, Encoder: simulator.EncoderKind(*encName),
		Cipher: seccomm.ChaCha20Stream, Rate: *rate, Model: energy.Default(), Seed: *seed,
	})
	if err != nil {
		log.Fatal(err)
	}

	rng := rand.New(rand.NewSource(*seed))
	atkSamples, err := attack.BuildSamples(res.SizesByLabel, *samples, rng)
	if err != nil {
		log.Fatal(err)
	}
	cv, err := attack.CrossValidate(atkSamples, data.Meta.NumLabels, 5, attack.DefaultAdaBoostConfig(), rng)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("attack on %s / %s / %s @ %.0f%%\n", *dsName, *polName, *encName, *rate*100)
	fmt.Printf("accuracy:  %.1f%% (folds: ", cv.MeanAccuracy*100)
	for i, a := range cv.FoldAccuracies {
		if i > 0 {
			fmt.Print(", ")
		}
		fmt.Printf("%.1f", a*100)
	}
	fmt.Printf(")\nmajority:  %.1f%%\n", cv.Majority*100)
	fmt.Printf("advantage: %.2fx over guessing\n", cv.MeanAccuracy/cv.Majority)

	events := dataset.LabelNames(*dsName)
	fmt.Println("confusion (rows = truth, cols = prediction):")
	fmt.Printf("%-14s", "")
	for c := range cv.Confusion {
		name := fmt.Sprintf("c%d", c)
		if c < len(events) {
			name = events[c]
		}
		fmt.Printf(" %10.10s", name)
	}
	fmt.Println()
	for r, row := range cv.Confusion {
		name := fmt.Sprintf("c%d", r)
		if r < len(events) {
			name = events[r]
		}
		fmt.Printf("%-14.14s", name)
		for _, v := range row {
			fmt.Printf(" %10d", v)
		}
		fmt.Println()
	}
}
